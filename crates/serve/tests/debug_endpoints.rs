//! `/admin/debug/*` live-state endpoints: valid JSON under a concurrent
//! request burst, and corrupt-reload observability (the failure is
//! counted, the old snapshot keeps serving, and the cache debug view
//! reports the pre-failure version plus the failed event).
//!
//! One test function: the rd-obs metrics registry is process-global, so
//! splitting these scenarios across `#[test]`s would race their counters.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nettopo::{ExternalAnalysis, LinkMap, Network};
use rd_serve::{ServeOptions, Server};
use rd_snap::{Corpus, NetworkSnapshot};
use routing_model::{
    classify_network, Adjacencies, InstanceGraph, Instances, ProcessGraph, Processes, Table1,
};

/// Analyzes a two-router corpus through the real pipeline and snapshots
/// it under `name`.
fn tiny_snapshot(name: &str) -> NetworkSnapshot {
    let r1 = "\
hostname edge1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
interface Serial0/0
 ip address 10.1.0.1 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
";
    let r2 = "\
hostname edge2
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
interface Serial0/0
 ip address 10.1.0.2 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
 neighbor 192.168.50.1 remote-as 7018
";
    let texts = vec![
        ("config1".to_string(), r1.to_string()),
        ("config2".to_string(), r2.to_string()),
    ];
    let network = Network::from_texts(texts).expect("tiny corpus parses");
    let links = LinkMap::build(&network);
    let external = ExternalAnalysis::build(&network, &links);
    let processes = Processes::extract(&network);
    let adjacencies = Adjacencies::build(&network, &links, &processes, &external);
    let instances = Instances::compute(&processes, &adjacencies);
    let instance_graph = InstanceGraph::build(&network, &processes, &adjacencies, &instances);
    let process_graph = ProcessGraph::build(&network, &processes, &adjacencies);
    let blocks = network.address_blocks();
    let table1 = Table1::compute(&instances, &instance_graph, &adjacencies);
    let design = classify_network(&network, &instances, &instance_graph, &adjacencies, &table1);
    let diagnostics = network.diagnostics.clone();
    NetworkSnapshot {
        name: name.to_string(),
        network,
        links,
        external,
        processes,
        adjacencies,
        instances,
        instance_graph,
        process_graph,
        blocks,
        table1,
        design,
        diagnostics,
        file_hashes: Vec::new(),
    }
}

fn corpus_of(names: &[&str]) -> Corpus {
    Corpus::new(names.iter().map(|n| tiny_snapshot(n)).collect())
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Reads one complete response (content-length framing).
fn read_response(stream: &mut TcpStream) -> (String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head_text = String::from_utf8(head).expect("utf-8 head");
    let len: usize = head_text
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .parse()
        .expect("numeric content-length");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("response body");
    (head_text, body)
}

/// One-shot GET returning (head, body text); asserts the status.
fn get(server: &Server, path: &str, status: &str) -> (String, String) {
    let mut stream = connect(server);
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with(&format!("HTTP/1.1 {status}")), "{path}: {head}");
    (head, String::from_utf8(body).expect("utf-8 body"))
}

fn counter(name: &str) -> u64 {
    rd_obs::metrics::snapshot()
        .into_iter()
        .find_map(|(n, m)| match m {
            rd_obs::metrics::Metric::Counter(v) if n == name => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

/// Asserts `body` is one well-formed JSON object and returns its keys.
fn valid_json(body: &str) -> Vec<String> {
    rd_obs::json::validate_object(body)
        .unwrap_or_else(|e| panic!("invalid debug JSON ({e}): {body}"))
}

#[test]
fn debug_endpoints_and_corrupt_reload_observability() {
    let dir = std::env::temp_dir().join(format!("rd-serve-debug-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.rdsnap");
    corpus_of(&["net1", "net2"]).write_file(&path).unwrap();

    let server =
        Server::start_file(&path, "127.0.0.1:0", ServeOptions::default()).expect("starts");
    let etag = server.etag();
    let etag_hex = etag.trim_matches('"').to_string();

    // Keep-alive burst traffic from several threads for the whole test:
    // the debug endpoints must render valid JSON while the loops are busy.
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("burst connect");
                stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    stream
                        .write_all(b"GET /networks HTTP/1.1\r\nhost: t\r\n\r\n")
                        .expect("burst write");
                    let (head, _) = read_response(&mut stream);
                    assert!(head.starts_with("HTTP/1.1 200"), "burst: {head}");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // /admin/debug/loop: valid JSON; loops publish their snapshots within
    // the publish interval, so `published` reaches the configured count.
    let deadline = Instant::now() + Duration::from_secs(5);
    let loops_body = loop {
        let (head, body) = get(&server, "/admin/debug/loop", "200");
        assert!(head.contains("cache-control: no-store"), "{head}");
        let keys = valid_json(&body);
        assert!(keys.contains(&"loops".to_string()), "{keys:?}");
        assert!(keys.contains(&"published".to_string()), "{keys:?}");
        if !body.contains("\"published\": 0,") {
            break body;
        }
        assert!(Instant::now() < deadline, "no loop ever published: {body}");
        std::thread::sleep(Duration::from_millis(50));
    };
    for field in ["\"wakeups\": ", "\"wheel_depth\": ", "\"live\": ", "\"requests\": "] {
        assert!(loops_body.contains(field), "{field} missing: {loops_body}");
    }

    // /admin/debug/conns: the burst's keep-alive connections show up
    // (open state, ages, buffer sizes) once a snapshot containing them
    // publishes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, body) = get(&server, "/admin/debug/conns", "200");
        let keys = valid_json(&body);
        assert!(keys.contains(&"conns".to_string()), "{keys:?}");
        if body.contains("\"state\": \"open\"") && body.contains("\"age_ms\": ") {
            break;
        }
        assert!(Instant::now() < deadline, "burst conns never published: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // /admin/debug/cache: serving snapshot + boot history entry.
    let (_, cache_body) = get(&server, "/admin/debug/cache", "200");
    let keys = valid_json(&cache_body);
    for key in ["etag", "networks", "entries", "reload_history"] {
        assert!(keys.contains(&key.to_string()), "{key} missing: {keys:?}");
    }
    assert!(cache_body.contains(&etag_hex), "etag missing: {cache_body}");
    assert!(cache_body.contains("\"networks\": 2"), "{cache_body}");
    assert!(cache_body.contains("\"detail\": \"boot\""), "{cache_body}");
    assert!(!cache_body.contains("\"entries\": 0,"), "cache unexpectedly empty: {cache_body}");

    // An unknown debug path 404s like any other route.
    get(&server, "/admin/debug/nope", "404");

    // Corrupt the snapshot on disk, then ask for a reload over HTTP: the
    // failure must be counted, the old cache must keep serving
    // byte-identical bodies, and the cache debug view must still report
    // the pre-failure version plus a failed history entry.
    let (_, nets_before) = get(&server, "/networks", "200");
    let failed_before = counter("http.reload_failed");
    std::fs::write(&path, b"definitely not a snapshot file").unwrap();

    let mut stream = connect(&server);
    stream
        .write_all(b"POST /admin/reload HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(String::from_utf8(body).unwrap().contains("reload scheduled"));

    let deadline = Instant::now() + Duration::from_secs(5);
    while counter("http.reload_failed") <= failed_before {
        assert!(Instant::now() < deadline, "reload failure never counted");
        std::thread::sleep(Duration::from_millis(20));
    }

    assert_eq!(server.etag(), etag, "failed reload must not move the etag");
    let (_, nets_after) = get(&server, "/networks", "200");
    assert_eq!(nets_after, nets_before, "old snapshot must keep serving");

    let (_, cache_body) = get(&server, "/admin/debug/cache", "200");
    valid_json(&cache_body);
    assert!(cache_body.contains(&etag_hex), "pre-failure etag gone: {cache_body}");
    assert!(cache_body.contains("\"ok\": false"), "failed event missing: {cache_body}");
    assert!(cache_body.contains("\"detail\": \"boot\""), "boot event dropped: {cache_body}");

    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for w in workers {
        total += w.join().expect("burst thread");
    }
    assert!(total > 0, "burst served nothing");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
