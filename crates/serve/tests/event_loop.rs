//! Event-loop behavior of the epoll-based `rd-serve`: conditional
//! requests, HEAD/zero-length framing, pipelined errors, slowloris
//! deadlines, partial writes under buffer pressure, connection-cap
//! rejection, and snapshot hot reload under load.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nettopo::{ExternalAnalysis, LinkMap, Network};
use rd_serve::{ServeOptions, Server};
use rd_snap::{Corpus, NetworkSnapshot};
use routing_model::{
    classify_network, Adjacencies, InstanceGraph, Instances, ProcessGraph, Processes, Table1,
};

/// Analyzes a two-router corpus through the real pipeline and snapshots
/// it under `name`.
fn tiny_snapshot(name: &str) -> NetworkSnapshot {
    let r1 = "\
hostname edge1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
interface Serial0/0
 ip address 10.1.0.1 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
";
    let r2 = "\
hostname edge2
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
interface Serial0/0
 ip address 10.1.0.2 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
 neighbor 192.168.50.1 remote-as 7018
";
    let texts = vec![
        ("config1".to_string(), r1.to_string()),
        ("config2".to_string(), r2.to_string()),
    ];
    let network = Network::from_texts(texts).expect("tiny corpus parses");
    let links = LinkMap::build(&network);
    let external = ExternalAnalysis::build(&network, &links);
    let processes = Processes::extract(&network);
    let adjacencies = Adjacencies::build(&network, &links, &processes, &external);
    let instances = Instances::compute(&processes, &adjacencies);
    let instance_graph = InstanceGraph::build(&network, &processes, &adjacencies, &instances);
    let process_graph = ProcessGraph::build(&network, &processes, &adjacencies);
    let blocks = network.address_blocks();
    let table1 = Table1::compute(&instances, &instance_graph, &adjacencies);
    let design = classify_network(&network, &instances, &instance_graph, &adjacencies, &table1);
    let diagnostics = network.diagnostics.clone();
    NetworkSnapshot {
        name: name.to_string(),
        network,
        links,
        external,
        processes,
        adjacencies,
        instances,
        instance_graph,
        process_graph,
        blocks,
        table1,
        design,
        diagnostics,
        file_hashes: Vec::new(),
    }
}

fn corpus_of(names: &[&str]) -> Corpus {
    Corpus::new(names.iter().map(|n| tiny_snapshot(n)).collect())
}

fn start_server() -> Server {
    Server::start(corpus_of(&["net1", "net2"]), "127.0.0.1:0", 2).expect("server starts")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Reads one complete response from a persistent stream: returns
/// (head text, body bytes) using `content-length` framing.
fn read_response_full(stream: &mut TcpStream, head_only: bool) -> (String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head_text = String::from_utf8(head).expect("utf-8 head");
    let len: usize = head_text
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length header")
        .parse()
        .expect("numeric content-length");
    // HEAD and 304 responses declare the length but elide the body.
    let status: u16 = head_text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body_len = if status == 304 || head_only { 0 } else { len };
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body).expect("response body");
    (head_text, body)
}

/// [`read_response_full`] for a GET/POST exchange (body expected).
fn read_response(stream: &mut TcpStream) -> (String, Vec<u8>) {
    read_response_full(stream, false)
}

#[test]
fn plan_endpoint_serves_the_attached_document_and_404s_without_one() {
    let plan_doc = "{\n  \"plan\": {\"units\": 0, \"steps\": []}\n}\n".to_string();
    let opts = ServeOptions { workers: 1, plan: Some(plan_doc.clone()), ..ServeOptions::default() };
    let server = Server::start_with(corpus_of(&["net1"]), "127.0.0.1:0", opts).expect("starts");
    let mut stream = connect(&server);
    stream.write_all(b"GET /plan HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("etag: "), "plan responses are snapshot-tagged: {head}");
    assert_eq!(body, plan_doc.as_bytes(), "served verbatim");
    // The same bytes come from the dynamic path too (`--no-cache`
    // equivalence is the cache contract).
    stream.write_all(b"GET //plan HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, plan_doc.as_bytes());
    drop(stream);
    server.shutdown();

    let server = Server::start(corpus_of(&["net1"]), "127.0.0.1:0", 1).expect("starts");
    let mut stream = connect(&server);
    stream.write_all(b"GET /plan HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(
        String::from_utf8_lossy(&body).contains("no plan loaded"),
        "{}",
        String::from_utf8_lossy(&body)
    );
    drop(stream);
    server.shutdown();
}

fn counter(name: &str) -> u64 {
    rd_obs::metrics::snapshot()
        .into_iter()
        .find_map(|(n, m)| match m {
            rd_obs::metrics::Metric::Counter(v) if n == name => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn etag_and_conditional_requests() {
    let server = start_server();
    let etag = server.etag();
    assert!(etag.starts_with('"') && etag.ends_with('"') && etag.len() == 18, "{etag}");

    let mut stream = connect(&server);
    stream
        .write_all(b"GET /networks HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains(&format!("etag: {etag}\r\n")), "{head}");
    assert!(!body.is_empty());

    // Matching validator → 304 with the etag, no content-type, no body.
    stream
        .write_all(
            format!("GET /networks HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 304 Not Modified"), "{head}");
    assert!(head.contains(&format!("etag: {etag}\r\n")), "{head}");
    assert!(!head.contains("content-type"), "{head}");
    assert!(body.is_empty());

    // Weak and list forms match too; a stale validator gets a 200.
    for value in [format!("W/{etag}"), format!("\"stale\", {etag}"), "*".to_string()] {
        stream
            .write_all(
                format!("GET /networks HTTP/1.1\r\nhost: t\r\nif-none-match: {value}\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        let (head, _) = read_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 304"), "{value}: {head}");
    }
    stream
        .write_all(
            b"GET /networks HTTP/1.1\r\nhost: t\r\nif-none-match: \"0000000000000000\"\r\n\r\n",
        )
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(!body.is_empty());
    server.shutdown();
}

#[test]
fn head_requests_and_zero_length_framing() {
    let server = start_server();
    let mut stream = connect(&server);

    // HEAD declares the GET's length but sends no body; the connection
    // must stay correctly framed for the next request.
    stream
        .write_all(b"HEAD /networks/net1 HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (head, body) = read_response_full(&mut stream, true);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("connection: keep-alive"), "{head}");
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(declared > 0);
    assert!(body.is_empty(), "HEAD must elide the body");

    // A zero-length (304) response next on the same connection.
    let etag = server.etag();
    stream
        .write_all(
            format!("GET /networks/net1 HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let (head, _) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 304"), "{head}");
    assert!(head.contains("content-length: 0\r\n"), "{head}");

    // And the full GET still arrives intact with exactly the HEAD length.
    stream
        .write_all(b"GET /networks/net1 HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body.len(), declared, "HEAD length must match GET body");

    // HEAD on an error path frames correctly too.
    let mut stream = connect(&server);
    stream
        .write_all(b"HEAD /nope HTTP/1.1\r\nhost: t\r\n\r\nGET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (head, body) = read_response_full(&mut stream, true);
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(body.is_empty(), "HEAD 404 must elide the body");
    let (head, _) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    server.shutdown();
}

#[test]
fn pipelined_errors_close_cleanly() {
    let server = start_server();

    // A malformed request followed by pipelined input: the 400 must
    // arrive in full (lingering close), and nothing after it is served.
    let mut stream = connect(&server);
    stream
        .write_all(b"NOT-HTTP\r\n\r\nGET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read to close");
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    assert!(out.contains("connection: close"), "{out}");
    assert_eq!(out.matches("HTTP/1.1").count(), 1, "pipelined request must not be served: {out}");

    // Same for an oversized declared body (413) with the body bytes and
    // another request already in flight behind it.
    let mut stream = connect(&server);
    let mut bytes = b"POST /networks HTTP/1.1\r\nhost: t\r\ncontent-length: 999999999\r\n\r\n"
        .to_vec();
    bytes.extend_from_slice(&[b'x'; 4096]);
    bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    stream.write_all(&bytes).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read to close");
    assert!(out.starts_with("HTTP/1.1 413"), "{out}");
    assert_eq!(out.matches("HTTP/1.1").count(), 1, "{out}");

    // A request with a small declared body is drained and the connection
    // survives: the pipelined request behind it is answered.
    let mut stream = connect(&server);
    stream
        .write_all(
            b"POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: 2\r\n\r\n{}GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        )
        .unwrap();
    let (head, _) = read_response(&mut stream);
    // No reload file is configured on this server → 409, keep-alive.
    assert!(head.starts_with("HTTP/1.1 409"), "{head}");
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(String::from_utf8(body).unwrap().contains("\"status\": \"ok\""));
    server.shutdown();
}

#[test]
fn truncated_body_then_eof_closes_with_single_400() {
    // One worker: if the loop spins on the truncated body (the skip
    // surviving into the error state), the follow-up connection below
    // would never be served.
    let opts = ServeOptions { workers: 1, ..ServeOptions::default() };
    let server = Server::start_with(corpus_of(&["net1"]), "127.0.0.1:0", opts).expect("starts");

    // Declared body never arrives at all, then FIN: the request itself
    // is answered, the truncation gets exactly one 400, and the
    // connection closes.
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 10\r\n\r\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read to close");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert_eq!(out.matches("HTTP/1.1 400").count(), 1, "exactly one 400: {out}");

    // Same with a partially delivered body.
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 10\r\n\r\nabc")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read to close");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    assert_eq!(out.matches("HTTP/1.1 400").count(), 1, "exactly one 400: {out}");

    // The lone loop thread must still be serving.
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
    server.shutdown();
}

#[test]
fn slowloris_hits_deadline_wheel() {
    let server = start_server();
    let mut stream = connect(&server);

    // Drip header bytes slower than the read deadline: the timer wheel
    // must cut the connection off with a 400 rather than waiting forever.
    let started = Instant::now();
    for chunk in [&b"GET /hea"[..], &b"lthz HT"[..], &b"TP/1.1\r\n"[..], &b"host:"[..]] {
        stream.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(700));
    }
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read to close");
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    assert!(out.contains("timed out"), "{out}");
    // The deadline is absolute from the last completed request, so the
    // drip-feed cannot extend it indefinitely.
    assert!(started.elapsed() < Duration::from_secs(8), "deadline fired too late");
    server.shutdown();
}

#[test]
fn partial_writes_drain_under_buffer_pressure() {
    let server = start_server();
    let mut stream = connect(&server);

    // Pipeline enough keep-alive requests that the aggregate response
    // bytes far exceed the socket buffer: the server must take the
    // partial-write path (EPOLLOUT re-arm) and, once its write buffer
    // passes the high-water mark, pause reading until the client drains.
    const N: usize = 600;
    let mut pipelined = Vec::new();
    for i in 0..N {
        let connection = if i == N - 1 { "close" } else { "keep-alive" };
        pipelined.extend_from_slice(
            format!("GET /networks/net1 HTTP/1.1\r\nhost: t\r\nconnection: {connection}\r\n\r\n")
                .as_bytes(),
        );
    }
    stream.write_all(&pipelined).unwrap();

    let mut reference: Option<Vec<u8>> = None;
    for i in 0..N {
        let (head, body) = read_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "response {i}: {head}");
        match &reference {
            None => reference = Some(body),
            Some(r) => assert_eq!(&body, r, "response {i} diverged"),
        }
    }
    assert!(reference.map(|r| r.len()).unwrap_or(0) > 500, "bodies unexpectedly small");
    // The final response carried connection: close; the stream must EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "bytes after final response");
    server.shutdown();
}

#[test]
fn accept_overflow_rejects_with_busy_503() {
    let opts = ServeOptions { workers: 1, max_conns: 2, ..ServeOptions::default() };
    let server = Server::start_with(corpus_of(&["net1"]), "127.0.0.1:0", opts).expect("starts");
    let before = counter("http.rejected_busy");

    // Fill both connection slots and prove they are registered by
    // completing a request on each.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut stream = connect(&server);
        stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        let (head, _) = read_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        held.push(stream);
    }

    // The connection over the cap gets an immediate 503 with
    // retry-after and a close, and the rejection is counted.
    let mut stream = connect(&server);
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read rejection");
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("retry-after: 1"), "{out}");
    assert!(out.contains("connection: close"), "{out}");
    assert!(counter("http.rejected_busy") > before, "rejection not counted");

    // Releasing a slot lets new connections through again.
    drop(held.pop());
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut stream = connect(&server);
        stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        if out.starts_with("HTTP/1.1 200") {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed: {out}");
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

#[test]
fn hot_reload_swaps_snapshot_mid_burst() {
    let dir = std::env::temp_dir().join(format!("rd-serve-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.rdsnap");
    corpus_of(&["net1", "net2"]).write_file(&path).unwrap();

    let server =
        Server::start_file(&path, "127.0.0.1:0", ServeOptions::default()).expect("starts");
    let etag_before = server.etag();
    let ok_before = counter("http.reload_ok");

    // Reference bodies for both snapshot versions.
    let body_of = |server: &Server, path: &str| -> Vec<u8> {
        let mut stream = connect(server);
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
            .unwrap();
        let (head, body) = read_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        body
    };
    let healthz_v1 = body_of(&server, "/healthz");
    let net1_pre = body_of(&server, "/networks/net1");

    // Burst traffic on a keep-alive connection throughout the reloads.
    // Every response must be complete and byte-identical to one snapshot
    // version — never dropped, never a mix.
    let stop = Arc::new(AtomicBool::new(false));
    let burst = {
        let stop = stop.clone();
        let addr = server.local_addr();
        std::thread::spawn(move || -> Vec<Vec<u8>> {
            let mut stream = TcpStream::connect(addr).expect("burst connect");
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut bodies = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                stream
                    .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                    .expect("burst write");
                let (head, body) = read_response(&mut stream);
                assert!(head.starts_with("HTTP/1.1 200"), "burst: {head}");
                bodies.push(body);
            }
            bodies
        })
    };

    // First reload: same file content. The swap must land (counted) and
    // bodies must compare equal before/after.
    server.trigger_reload();
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter("http.reload_ok") < ok_before + 1 {
        assert!(Instant::now() < deadline, "reload never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.etag(), etag_before, "same snapshot must keep its etag");
    assert_eq!(body_of(&server, "/networks/net1"), net1_pre, "same-content reload changed bytes");

    // Second reload: a different corpus, triggered over HTTP. The etag
    // and the rendered bodies must move to the new snapshot.
    corpus_of(&["net1", "net2", "net3"]).write_file(&path).unwrap();
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /admin/reload HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    let (head, body) = read_response(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(String::from_utf8(body).unwrap().contains("reload scheduled"));
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter("http.reload_ok") < ok_before + 2 {
        assert!(Instant::now() < deadline, "second reload never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_ne!(server.etag(), etag_before, "new snapshot must change the etag");
    let healthz_v2 = body_of(&server, "/healthz");
    assert_ne!(healthz_v2, healthz_v1);
    assert!(String::from_utf8_lossy(&healthz_v2).contains("\"networks\": 3"));

    stop.store(true, Ordering::Relaxed);
    let bodies = burst.join().expect("burst thread");
    assert!(!bodies.is_empty());
    for (i, body) in bodies.iter().enumerate() {
        assert!(
            body == &healthz_v1 || body == &healthz_v2,
            "burst response {i} matches neither snapshot version: {}",
            String::from_utf8_lossy(body)
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
