//! `rd-chaos`: a deterministic fault-injection engine for the toolchain.
//!
//! The paper's methodology was forged on 8,035 *anonymized production*
//! configs — truncated files, encoding damage, anonymization smears and
//! per-network quirks included — while this repository's pipeline
//! normally only sees pristine `netgen` output. This crate closes that
//! gap: it turns clean corpora into systematically damaged ones so the
//! rest of the toolchain can prove the invariant
//! **error-not-panic, bounded memory, deterministic diagnostics**.
//!
//! Two corruption surfaces:
//!
//! - [`ConfigMutator`]: composable byte-level mutations of router
//!   configuration files (mid-line truncation, garbage/binary bytes,
//!   non-UTF-8 sequences, CRLF/whitespace mangling, dropped `!` section
//!   terminators, duplicated hostnames, deleted files, zero-byte files,
//!   over-long lines, anonymization-style token smears).
//! - [`SnapMutator`]: corruption of `.rdsnap` containers (truncation at
//!   every frame boundary — with the checksum *recomputed*, so the damage
//!   reaches the decoder instead of dying at the checksum gate — plus raw
//!   bit flips and length-prefix bombs).
//!
//! Everything is driven by `rd_rng::StdRng`, so a seed fully determines
//! the fault corpus: two sweeps with the same seed mutate identically on
//! any machine at any `RD_THREADS`. The sweep driver itself lives in
//! `rdx chaos` (the `routing-design` crate); this crate stays at the
//! byte level and depends only on `rd-rng` and `rd-snap`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rd_rng::StdRng;

// ---------------------------------------------------------------------------
// Configuration-file mutators

/// One way to damage a configuration file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigMutator {
    /// Cut the file mid-line (not at a line boundary), like an
    /// interrupted transfer.
    TruncateMidLine,
    /// Splice a short run of random binary bytes into the file.
    GarbageBytes,
    /// Overwrite a span with bytes that are not valid UTF-8.
    InvalidUtf8,
    /// Rewrite line endings to CRLF for a random subset of lines and
    /// sprinkle stray carriage returns and tabs.
    CrlfMangle,
    /// Drop every `!` section-terminator line.
    DropBangs,
    /// Append a duplicate `hostname` command with a clashing name.
    DuplicateHostname,
    /// Delete the file from the corpus entirely.
    DeleteFile,
    /// Replace the file with zero bytes.
    EmptyFile,
    /// Append a single absurdly long command line.
    OverlongLine,
    /// Smear random alphanumeric tokens into `XXXX` runs, the way
    /// aggressive anonymizers do.
    TokenSmear,
}

/// Every config mutator, in a fixed order (sweeps cycle through this so
/// each mutator gets coverage regardless of trial count).
pub const CONFIG_MUTATORS: &[ConfigMutator] = &[
    ConfigMutator::TruncateMidLine,
    ConfigMutator::GarbageBytes,
    ConfigMutator::InvalidUtf8,
    ConfigMutator::CrlfMangle,
    ConfigMutator::DropBangs,
    ConfigMutator::DuplicateHostname,
    ConfigMutator::DeleteFile,
    ConfigMutator::EmptyFile,
    ConfigMutator::OverlongLine,
    ConfigMutator::TokenSmear,
];

impl ConfigMutator {
    /// Stable kebab-case name (used in sweep summaries).
    pub fn name(self) -> &'static str {
        match self {
            ConfigMutator::TruncateMidLine => "truncate-mid-line",
            ConfigMutator::GarbageBytes => "garbage-bytes",
            ConfigMutator::InvalidUtf8 => "invalid-utf8",
            ConfigMutator::CrlfMangle => "crlf-mangle",
            ConfigMutator::DropBangs => "drop-bangs",
            ConfigMutator::DuplicateHostname => "duplicate-hostname",
            ConfigMutator::DeleteFile => "delete-file",
            ConfigMutator::EmptyFile => "empty-file",
            ConfigMutator::OverlongLine => "overlong-line",
            ConfigMutator::TokenSmear => "token-smear",
        }
    }
}

/// Applies `mutator` to one configuration file. Returns `None` when the
/// file is deleted from the corpus ([`ConfigMutator::DeleteFile`]);
/// otherwise the mutated bytes. Deterministic in (`rng` state, input).
pub fn mutate_config(rng: &mut StdRng, mutator: ConfigMutator, bytes: &[u8]) -> Option<Vec<u8>> {
    let mut out = bytes.to_vec();
    match mutator {
        ConfigMutator::TruncateMidLine => {
            if out.len() > 2 {
                // Aim inside a line: step back from a random cut until the
                // previous byte is not a newline.
                let mut cut = rng.gen_range(1..out.len());
                while cut > 1 && out[cut - 1] == b'\n' {
                    cut -= 1;
                }
                out.truncate(cut);
            }
        }
        ConfigMutator::GarbageBytes => {
            let n = rng.gen_range(1..=64usize);
            let at = rng.gen_range(0..=out.len());
            let garbage: Vec<u8> = (0..n).map(|_| (rng.next_u32() & 0xff) as u8).collect();
            out.splice(at..at, garbage);
        }
        ConfigMutator::InvalidUtf8 => {
            if out.is_empty() {
                out.extend_from_slice(&[0xff, 0xfe]);
            } else {
                let at = rng.gen_range(0..out.len());
                let n = rng.gen_range(1..=4usize).min(out.len() - at);
                for b in &mut out[at..at + n] {
                    // 0xF8..0xFF never appear in well-formed UTF-8.
                    *b = 0xf8 | ((rng.next_u32() & 0x07) as u8);
                }
            }
        }
        ConfigMutator::CrlfMangle => {
            let mut mangled = Vec::with_capacity(out.len() + 16);
            for &b in &out {
                if b == b'\n' && rng.gen_bool(0.5) {
                    mangled.push(b'\r');
                }
                mangled.push(b);
                if b == b' ' && rng.gen_bool(0.05) {
                    mangled.push(b'\t');
                }
            }
            out = mangled;
        }
        ConfigMutator::DropBangs => {
            let text: Vec<u8> = out
                .split(|&b| b == b'\n')
                .filter(|line| line.iter().any(|&b| b != b'!' && b != b' ' && b != b'\r'))
                .flat_map(|line| line.iter().copied().chain(std::iter::once(b'\n')))
                .collect();
            out = text;
        }
        ConfigMutator::DuplicateHostname => {
            let tag = rng.gen_range(0..10_000u32);
            out.extend_from_slice(format!("hostname dup-{tag}\n").as_bytes());
        }
        ConfigMutator::DeleteFile => return None,
        ConfigMutator::EmptyFile => out.clear(),
        ConfigMutator::OverlongLine => {
            let len = rng.gen_range(16_384..=65_536usize);
            out.extend_from_slice(b"description ");
            out.extend(std::iter::repeat(b'x').take(len));
            out.push(b'\n');
        }
        ConfigMutator::TokenSmear => {
            let mut i = 0usize;
            while i < out.len() {
                if out[i].is_ascii_alphanumeric() {
                    let start = i;
                    while i < out.len() && out[i].is_ascii_alphanumeric() {
                        i += 1;
                    }
                    if i - start >= 3 && rng.gen_bool(0.15) {
                        for b in &mut out[start..i] {
                            *b = b'X';
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Snapshot corruptors

/// One way to damage an `.rdsnap` container.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapMutator {
    /// Truncate the body at a frame boundary and *recompute the checksum*
    /// so the decoder sees internally-consistent-looking truncation
    /// instead of failing at the checksum gate.
    TruncateAtBoundary,
    /// Flip one random bit anywhere in the file (checksum included).
    BitFlip,
    /// Rewrite one section's length prefix to a huge value (checksum
    /// recomputed): an attacker-controlled allocation probe.
    LengthBomb,
}

/// Every snapshot mutator, in a fixed order.
pub const SNAP_MUTATORS: &[SnapMutator] =
    &[SnapMutator::TruncateAtBoundary, SnapMutator::BitFlip, SnapMutator::LengthBomb];

impl SnapMutator {
    /// Stable kebab-case name (used in sweep summaries).
    pub fn name(self) -> &'static str {
        match self {
            SnapMutator::TruncateAtBoundary => "truncate-at-boundary",
            SnapMutator::BitFlip => "bit-flip",
            SnapMutator::LengthBomb => "length-bomb",
        }
    }
}

/// Structural offsets of an `.rdsnap` container body (everything before
/// the 8-byte checksum trailer), recovered by walking the frame layout:
/// magic, version varint, section count varint, then per section a name
/// string, a length varint, and the payload, then the format-v3 manifest
/// footer (payload + fixed-width length field).
#[derive(Clone, Debug, Default)]
pub struct SnapLayout {
    /// Byte offsets (into the body) of every frame boundary: after the
    /// magic, after the version, after the count, after each section's
    /// name, length prefix, and payload, and after the manifest payload
    /// and its 8-byte length field.
    pub boundaries: Vec<usize>,
    /// `(offset, encoded_len)` of each section-length varint — the
    /// targets for [`SnapMutator::LengthBomb`].
    pub length_varints: Vec<(usize, usize)>,
}

/// Reads one LEB128 varint at `pos`, returning `(value, bytes_consumed)`.
fn read_varint(body: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut i = pos;
    loop {
        let b = *body.get(i)?;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        i += 1;
        if b & 0x80 == 0 {
            return Some((v, i - pos));
        }
        shift += 7;
    }
}

/// Encodes a LEB128 varint (mirror of `rd_snap::Writer::u64`).
fn encode_varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return out;
        }
        out.push(b | 0x80);
    }
}

/// Walks a well-formed snapshot's container frames and returns its
/// layout. `bytes` is the whole file (trailer included). Returns an empty
/// layout when the container is too damaged to walk — corruptors then
/// fall back to raw positions.
pub fn snapshot_layout(bytes: &[u8]) -> SnapLayout {
    let mut layout = SnapLayout::default();
    if bytes.len() < rd_snap::MAGIC.len() + 8 {
        return layout;
    }
    let body = &bytes[..bytes.len() - 8];
    let mut pos = rd_snap::MAGIC.len();
    layout.boundaries.push(pos);
    let Some((_version, n)) = read_varint(body, pos) else { return SnapLayout::default() };
    pos += n;
    layout.boundaries.push(pos);
    let Some((count, n)) = read_varint(body, pos) else { return SnapLayout::default() };
    pos += n;
    layout.boundaries.push(pos);
    for _ in 0..count {
        // Section name: length varint + bytes.
        let Some((name_len, n)) = read_varint(body, pos) else { return SnapLayout::default() };
        pos += n + name_len as usize;
        if pos > body.len() {
            return SnapLayout::default();
        }
        layout.boundaries.push(pos);
        // Section payload length.
        let Some((payload_len, n)) = read_varint(body, pos) else {
            return SnapLayout::default();
        };
        layout.length_varints.push((pos, n));
        pos += n;
        layout.boundaries.push(pos);
        pos += payload_len as usize;
        if pos > body.len() {
            return SnapLayout::default();
        }
        layout.boundaries.push(pos);
    }
    // Format v3: the manifest payload and its fixed-width 8-byte length
    // field sit between the last section and the checksum trailer.
    if body.len() < pos + 8 {
        return SnapLayout::default();
    }
    let mut field = [0u8; 8];
    field.copy_from_slice(&body[body.len() - 8..]);
    let manifest_len = u64::from_le_bytes(field) as usize;
    if pos + manifest_len + 8 != body.len() {
        return SnapLayout::default();
    }
    pos += manifest_len;
    layout.boundaries.push(pos);
    layout.boundaries.push(pos + 8);
    layout
}

/// Truncates the body at `cut` and appends a freshly computed checksum,
/// producing a file whose trailer is valid for its (damaged) body.
pub fn truncate_rechecksum(bytes: &[u8], cut: usize) -> Vec<u8> {
    let body_len = bytes.len().saturating_sub(8);
    let cut = cut.min(body_len);
    let mut out = bytes[..cut].to_vec();
    let sum = rd_snap::fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Applies `mutator` to a snapshot file. Deterministic in (`rng` state,
/// input bytes).
pub fn corrupt_snapshot(rng: &mut StdRng, mutator: SnapMutator, bytes: &[u8]) -> Vec<u8> {
    match mutator {
        SnapMutator::TruncateAtBoundary => {
            let body_len = bytes.len().saturating_sub(8);
            // Boundaries strictly inside the body: cutting at the very end
            // would reproduce the original file, which is not a fault.
            let cuts: Vec<usize> = snapshot_layout(bytes)
                .boundaries
                .into_iter()
                .filter(|&b| b < body_len)
                .collect();
            let cut = if cuts.is_empty() {
                rng.gen_range(0..body_len.max(1))
            } else {
                cuts[rng.gen_range(0..cuts.len())]
            };
            truncate_rechecksum(bytes, cut)
        }
        SnapMutator::BitFlip => {
            let mut out = bytes.to_vec();
            if !out.is_empty() {
                let at = rng.gen_range(0..out.len());
                out[at] ^= 1 << rng.gen_range(0..8u32);
            }
            out
        }
        SnapMutator::LengthBomb => {
            let layout = snapshot_layout(bytes);
            let mut out = bytes[..bytes.len().saturating_sub(8)].to_vec();
            if let Some(&(at, len)) = layout
                .length_varints
                .get(rng.gen_range(0..layout.length_varints.len().max(1)))
                .filter(|_| !layout.length_varints.is_empty())
            {
                // A bomb well past any plausible corpus size, but still a
                // valid varint: the decoder's length caps must reject it
                // before allocating.
                let bomb = 1u64 << rng.gen_range(40..62u32);
                out.splice(at..at + len, encode_varint(bomb));
            } else if !out.is_empty() {
                let at = out.len() - 1;
                out[at] = 0xff; // dangling continuation bit
            }
            let sum = rd_snap::fnv1a64(&out);
            out.extend_from_slice(&sum.to_le_bytes());
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Disk-fault injectors

/// One way a snapshot persist (or the analysis feeding it) can go wrong
/// on a real machine: the faults `rdx watch` must survive without ever
/// serving a torn or mixed-version snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// The process dies (or the disk fills) mid-write: a prefix of the
    /// bytes lands in the staging `.tmp`, the rename never happens.
    TornWrite,
    /// A buggy short write: only the first few bytes make it to the
    /// staging `.tmp` before the write errors out.
    ShortWrite,
    /// The staging file is written completely — valid bytes and all —
    /// but the final rename fails, leaving a *valid but stale* `.tmp`.
    RenameFailure,
    /// The write itself is fine; the analysis producing it stalls
    /// (seeded sleep), so changes pile up behind a slow worker.
    SlowAnalysis,
}

/// Every disk fault, in a fixed sweep order.
pub const DISK_FAULTS: &[DiskFault] =
    &[DiskFault::TornWrite, DiskFault::ShortWrite, DiskFault::RenameFailure, DiskFault::SlowAnalysis];

impl DiskFault {
    /// Stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            DiskFault::TornWrite => "torn_write",
            DiskFault::ShortWrite => "short_write",
            DiskFault::RenameFailure => "rename_failure",
            DiskFault::SlowAnalysis => "slow_analysis",
        }
    }
}

/// Persists `bytes` to `path` the way a machine suffering `fault` would:
/// the on-disk aftermath is real (a torn or stale `rd_snap::tmp_path`
/// staging file where the fault calls for one) and the returned error
/// mirrors what the caller's `write_atomic` would have surfaced.
/// [`DiskFault::SlowAnalysis`] is not a write fault — it sleeps a seeded
/// few milliseconds and then persists correctly.
///
/// Deterministic for a given `(rng state, fault, bytes)`; the caller's
/// recovery path (`rd_snap::recover_dir` + serving last-good) is what the
/// chaos soak asserts on.
pub fn faulty_persist(
    rng: &mut StdRng,
    fault: DiskFault,
    path: &std::path::Path,
    bytes: &[u8],
) -> std::io::Result<()> {
    use std::io::{Error, ErrorKind};
    let tmp = rd_snap::tmp_path(path);
    match fault {
        DiskFault::TornWrite => {
            // Anywhere strictly inside the payload: the checksum trailer
            // can never be complete, so a later reader must reject it.
            let cut = rng.gen_range(1..bytes.len().max(2));
            std::fs::write(&tmp, &bytes[..cut.min(bytes.len())])?;
            Err(Error::new(ErrorKind::UnexpectedEof, "torn write (injected)"))
        }
        DiskFault::ShortWrite => {
            let cut = rng.gen_range(0..=bytes.len().min(64));
            std::fs::write(&tmp, &bytes[..cut])?;
            Err(Error::new(ErrorKind::WriteZero, "short write (injected)"))
        }
        DiskFault::RenameFailure => {
            std::fs::write(&tmp, bytes)?;
            Err(Error::other("rename failed (injected)"))
        }
        DiskFault::SlowAnalysis => {
            std::thread::sleep(std::time::Duration::from_millis(rng.gen_range(1..10)));
            rd_snap::write_atomic(path, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const SAMPLE: &[u8] = b"hostname r1\n!\ninterface Serial0\n ip address 10.0.0.1 255.255.255.252\n!\nend\n";

    #[test]
    fn mutators_are_deterministic() {
        for &m in CONFIG_MUTATORS {
            let a = mutate_config(&mut rng(), m, SAMPLE);
            let b = mutate_config(&mut rng(), m, SAMPLE);
            assert_eq!(a, b, "{} not deterministic", m.name());
        }
    }

    #[test]
    fn mutators_change_or_remove_the_input() {
        for &m in CONFIG_MUTATORS {
            match mutate_config(&mut rng(), m, SAMPLE) {
                None => assert_eq!(m, ConfigMutator::DeleteFile),
                Some(out) => {
                    assert_ne!(out, SAMPLE, "{} left input intact", m.name());
                }
            }
        }
    }

    #[test]
    fn empty_file_mutator_produces_zero_bytes() {
        assert_eq!(
            mutate_config(&mut rng(), ConfigMutator::EmptyFile, SAMPLE),
            Some(Vec::new())
        );
    }

    #[test]
    fn invalid_utf8_mutator_breaks_utf8() {
        let out = mutate_config(&mut rng(), ConfigMutator::InvalidUtf8, SAMPLE).unwrap();
        assert!(std::str::from_utf8(&out).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, 1 << 60] {
            let enc = encode_varint(v);
            assert_eq!(read_varint(&enc, 0), Some((v, enc.len())));
        }
    }

    #[test]
    fn layout_walks_an_empty_corpus() {
        let corpus = rd_snap::Corpus::default();
        let bytes = corpus.to_bytes();
        let layout = snapshot_layout(&bytes);
        // magic | version | count boundaries, no sections, then the
        // manifest payload and its length field.
        assert_eq!(layout.boundaries.len(), 5);
        assert!(layout.length_varints.is_empty());
    }

    #[test]
    fn truncate_rechecksum_keeps_trailer_valid() {
        let corpus = rd_snap::Corpus::default();
        let bytes = corpus.to_bytes();
        let cut = truncate_rechecksum(&bytes, 7);
        assert_eq!(cut.len(), 7 + 8);
        let stored = u64::from_le_bytes(cut[7..].try_into().expect("8-byte trailer"));
        assert_eq!(stored, rd_snap::fnv1a64(&cut[..7]));
    }

    #[test]
    fn snapshot_corruptors_are_deterministic() {
        let corpus = rd_snap::Corpus::default();
        let bytes = corpus.to_bytes();
        for &m in SNAP_MUTATORS {
            let a = corrupt_snapshot(&mut rng(), m, &bytes);
            let b = corrupt_snapshot(&mut rng(), m, &bytes);
            assert_eq!(a, b, "{} not deterministic", m.name());
            assert!(rd_snap::Corpus::from_bytes(&a).is_err(), "{} decoded", m.name());
        }
    }
}
