//! Hierarchical wall-clock profiling: RAII spans that aggregate into
//! collapsed-stack ("folded") output consumable by standard flamegraph
//! tooling (`stack;substack self_microseconds` per line).
//!
//! The model is a per-thread stack of open frames. [`span`] (or the
//! `span!` macro) pushes a frame and returns a guard; dropping the guard
//! pops it, computes **self time** (wall clock minus the time spent in
//! child spans), and folds one sample into a process-global table keyed
//! by the `;`-joined stack path. Every span carries a process-unique id
//! and knows its parent's id ([`ProfSpan::id`] / [`ProfSpan::parent_id`]);
//! ids are handed out from an atomic counter and are never serialized
//! into deterministic outputs.
//!
//! Cross-thread stacks: `rd_par::par_map` captures the caller's open
//! stack with [`stack_path`] and replays it on each worker via
//! [`with_stack`], so a span opened inside a worker folds under the same
//! stack it would have in the sequential path. The child time workers
//! report is credited back to the caller's frame with [`credit_child_us`]
//! after the join, keeping parent self-time exclusive (parallel child
//! time can exceed the parent's wall clock; the subtraction saturates).
//!
//! Determinism: the table is a `BTreeMap`, so [`render_folded`] is sorted
//! by stack path, and every opened stack records its key even at zero
//! self time. With `RD_PROF_ZERO=1` the rendered counts are zeroed,
//! making profiles byte-identical at any `RD_THREADS` — the same
//! convention as `RD_TRACE_ZERO` for trace timestamps. When a trace sink
//! is active, each profile span additionally emits `span_open`/
//! `span_close` trace events through the ordered per-item flush, so
//! profiles and traces stay consistent.
//!
//! Profiling is off by default; a disabled [`span`] call costs one atomic
//! load. `rdx --profile <path>` / `repro --profile <path>` enable it and
//! write the folded table on exit.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable: when `1`/`true`, [`render_folded`] via
/// [`zero_from_env`] reports every count as 0, making folded profiles
/// byte-comparable across thread counts and machines.
pub const PROF_ZERO_ENV: &str = "RD_PROF_ZERO";

/// Aggregated samples for one distinct call stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StackStat {
    /// How many spans closed with exactly this stack.
    pub calls: u64,
    /// Accumulated self time in microseconds (wall clock minus the wall
    /// clock of child spans, saturating at zero for parallel children).
    pub self_us: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static TABLE: Mutex<BTreeMap<String, StackStat>> = Mutex::new(BTreeMap::new());

struct Frame {
    name: String,
    id: u64,
    start: Instant,
    child_us: u64,
    /// Synthetic frames carry a cross-thread stack prefix installed by
    /// [`with_stack`]; they aggregate child time but never record a
    /// sample of their own.
    synthetic: bool,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// True when span recording is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on (idempotent). Enable **before** the work you
/// want profiled: spans opened while disabled stay unarmed for their
/// whole lifetime.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span recording off. Already-open armed spans still fold their
/// samples when dropped.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears the aggregated stack table (tests, repeated harness runs).
pub fn reset() {
    TABLE.lock().expect("profile table poisoned").clear();
}

/// True when `RD_PROF_ZERO` asks for zeroed counts.
pub fn zero_from_env() -> bool {
    std::env::var(PROF_ZERO_ENV).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// An open profiling span; dropping it closes the span and folds one
/// sample into the global table. Unarmed (profiling disabled at open) is
/// a no-op end to end.
pub struct ProfSpan {
    armed: bool,
    id: u64,
    parent: u64,
    /// Mirrors the span into the trace stream when a sink is active, so
    /// `span_open`/`span_close` events flush in the usual ordered way.
    _trace: Option<crate::trace::SpanGuard>,
}

impl ProfSpan {
    /// This span's process-unique id (0 when unarmed). Ids exist for
    /// programmatic correlation only and never appear in folded output.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The enclosing span's id at open time (0 for a root span).
    pub fn parent_id(&self) -> u64 {
        self.parent
    }
}

/// Opens a span named `name` under the current thread's innermost open
/// span. Prefer the `span!` macro, which also supports format arguments.
pub fn span(name: &str) -> ProfSpan {
    if !enabled() {
        return ProfSpan { armed: false, id: 0, parent: 0, _trace: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let trace = crate::trace::enabled().then(|| crate::trace::span(name, &[]));
    let parent = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().map(|f| f.id).unwrap_or(0);
        stack.push(Frame {
            name: name.to_string(),
            id,
            start: Instant::now(),
            child_us: 0,
            synthetic: false,
        });
        parent
    });
    ProfSpan { armed: true, id, parent, _trace: trace }
}

impl Drop for ProfSpan {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let popped = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop()?;
            debug_assert_eq!(frame.id, self.id, "profile spans must drop in LIFO order");
            let dur_us = frame.start.elapsed().as_micros() as u64;
            let mut path = String::with_capacity(48);
            for f in stack.iter() {
                path.push_str(&f.name);
                path.push(';');
            }
            path.push_str(&frame.name);
            if let Some(parent) = stack.last_mut() {
                parent.child_us += dur_us;
            }
            Some((path, dur_us.saturating_sub(frame.child_us)))
        });
        let Some((path, self_us)) = popped else {
            return;
        };
        let mut table = TABLE.lock().expect("profile table poisoned");
        let stat = table.entry(path).or_default();
        stat.calls += 1;
        stat.self_us += self_us;
    }
}

/// The current thread's open stack as a `;`-joined path (empty with no
/// spans open or profiling off). The parallel layer captures this before
/// a fan-out and replays it on workers via [`with_stack`].
pub fn stack_path() -> String {
    if !enabled() {
        return String::new();
    }
    STACK.with(|s| {
        let stack = s.borrow();
        let mut out = String::new();
        for (i, f) in stack.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&f.name);
        }
        out
    })
}

/// Runs `f` with `prefix` (a `;`-joined path from [`stack_path`],
/// possibly empty) installed as this thread's stack root. Returns `f`'s
/// value and the microseconds of direct child spans opened during it,
/// which the caller folds back into its own frame via
/// [`credit_child_us`]. The prefix frame itself never records a sample.
pub fn with_stack<R>(prefix: &str, f: impl FnOnce() -> R) -> (R, u64) {
    if !enabled() || prefix.is_empty() {
        return (f(), 0);
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name: prefix.to_string(),
            id: 0,
            start: Instant::now(),
            child_us: 0,
            synthetic: true,
        });
    });
    // Pop even if `f` panics (try_par_map catches per-item panics and the
    // worker thread is reused for further items).
    struct PopOnDrop<'a> {
        child_us: &'a Cell<u64>,
    }
    impl Drop for PopOnDrop<'_> {
        fn drop(&mut self) {
            let popped = STACK.with(|s| s.borrow_mut().pop());
            if let Some(frame) = popped {
                debug_assert!(frame.synthetic, "with_stack must pop its own prefix frame");
                self.child_us.set(frame.child_us);
            }
        }
    }
    let child_us = Cell::new(0);
    let value = {
        let _guard = PopOnDrop { child_us: &child_us };
        f()
    };
    (value, child_us.get())
}

/// Adds `us` of child time to this thread's innermost open frame (no-op
/// with none open). Called by the parallel layer after a fan-out joins,
/// with the summed direct-child time its workers reported, so the
/// caller's self time excludes work that ran on other threads.
pub fn credit_child_us(us: u64) {
    if us == 0 || !enabled() {
        return;
    }
    STACK.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.child_us += us;
        }
    });
}

/// A sorted copy of the aggregated stack table.
pub fn table_snapshot() -> Vec<(String, StackStat)> {
    let table = TABLE.lock().expect("profile table poisoned");
    table.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Renders the table in collapsed-stack format — one
/// `stack;substack self_us` line per distinct stack, sorted by path.
/// With `zero` the counts render as 0: the line set (which stacks ran)
/// is thread-count-invariant, so zeroed output is byte-comparable.
pub fn render_folded(zero: bool) -> String {
    let table = TABLE.lock().expect("profile table poisoned");
    let mut out = String::new();
    for (path, stat) in table.iter() {
        let count = if zero { 0 } else { stat.self_us };
        let _ = writeln!(out, "{path} {count}");
    }
    out
}

/// Writes [`render_folded`] to `path`, honoring `RD_PROF_ZERO`.
pub fn write_folded(path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_folded(zero_from_env()))
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test function: the enabled flag and table are process-global
    // and `cargo test` runs #[test] functions concurrently.
    #[test]
    fn span_lifecycle_and_folded_output() {
        // Disabled spans are unarmed and record nothing.
        reset();
        {
            let s = span("cold");
            assert_eq!((s.id(), s.parent_id()), (0, 0));
        }
        assert!(render_folded(false).is_empty());

        enable();
        assert!(enabled());

        // Nesting: child stacks fold under the parent path, parent self
        // time excludes the child, ids link child to parent.
        {
            let root = span("root");
            assert!(root.id() > 0 && root.parent_id() == 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let child = span("child");
                assert_eq!(child.parent_id(), root.id());
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let table: BTreeMap<String, StackStat> = table_snapshot().into_iter().collect();
        assert_eq!(table.len(), 2, "{table:?}");
        assert_eq!(table["root"].calls, 1);
        assert_eq!(table["root;child"].calls, 1);
        assert!(table["root;child"].self_us >= 3_000, "{table:?}");
        // Root slept ~2ms itself; its ~4ms child must not be double-counted.
        let root_self = table["root"].self_us;
        assert!((1_000..4_000).contains(&root_self), "root self {root_self}us");

        // Cross-thread replay: a worker with the captured prefix folds
        // under the caller's stack and reports child time for crediting.
        reset();
        {
            let _outer = span("outer");
            let prefix = stack_path();
            assert_eq!(prefix, "outer");
            let handle = std::thread::spawn(move || {
                let ((), child_us) = with_stack(&prefix, || {
                    let _inner = span("inner");
                    std::thread::sleep(std::time::Duration::from_millis(3));
                });
                child_us
            });
            let child_us = handle.join().expect("worker");
            assert!(child_us >= 2_000, "worker child time {child_us}us");
            credit_child_us(child_us);
        }
        let table: BTreeMap<String, StackStat> = table_snapshot().into_iter().collect();
        assert_eq!(table["outer;inner"].calls, 1, "{table:?}");
        // The ~3ms that ran on the worker was credited back: outer's self
        // time must not include it. Without crediting, self time would be
        // the worker's sleep plus spawn/join overhead (>5.5ms); the bound
        // leaves room for scheduler delay on a loaded host.
        assert!(table["outer"].self_us < 5_000, "{table:?}");

        // Empty prefix is a passthrough (roots stay roots, nothing to
        // credit); folded output is sorted and zeroing blanks counts.
        let ((), zero_child) = with_stack("", || {
            let _solo = span("solo");
        });
        assert_eq!(zero_child, 0);
        let folded = render_folded(false);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded output must be path-sorted");
        assert!(folded.contains("outer;inner "));
        let zeroed = render_folded(true);
        assert!(zeroed.lines().all(|l| l.ends_with(" 0")), "{zeroed}");
        assert_eq!(
            zeroed.lines().count(),
            folded.lines().count(),
            "zeroing must keep the line set"
        );

        // The span! macro forwards literals and format args.
        {
            let _a = crate::span!("macro-lit");
            let _b = crate::span!("macro:{}", 15);
        }
        let folded = render_folded(false);
        assert!(folded.contains("macro-lit;macro:15 "));

        disable();
        reset();
        assert!(render_folded(false).is_empty());
    }
}
