//! `trace_check` — validates an emitted JSONL trace file.
//!
//! Every line must be a syntactically valid JSON object carrying the
//! required event keys (`ev`, `name`, `ts_us`). Used by `scripts/verify.sh`
//! as the self-check over traces emitted by `rdx` and `repro`.
//!
//! ```sh
//! trace_check <trace.jsonl>
//! ```
//!
//! Exits 0 printing a line/kind summary, or 1 naming the first bad line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut total = 0usize;
    let mut opens = 0usize;
    let mut closes = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Err(e) = rd_obs::json::validate_event_line(line) {
            eprintln!("trace_check: {path}:{}: {e}", i + 1);
            eprintln!("  {line}");
            return ExitCode::FAILURE;
        }
        total += 1;
        // Cheap kind census; the schema puts "ev" first.
        if line.starts_with("{\"ev\":\"span_open\"") {
            opens += 1;
        } else if line.starts_with("{\"ev\":\"span_close\"") {
            closes += 1;
        }
    }
    if opens != closes {
        eprintln!("trace_check: {path}: {opens} span_open vs {closes} span_close");
        return ExitCode::FAILURE;
    }
    println!(
        "trace_check: {path}: {total} valid event line(s) ({opens} spans, {} point events)",
        total - opens - closes
    );
    ExitCode::SUCCESS
}
