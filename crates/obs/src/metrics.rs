//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, collected process-wide and dumped deterministically.
//!
//! Metrics are always on (unlike tracing, which needs a sink): updates are
//! coarse-grained — once per file or per stage, never per line — so a
//! single mutex-guarded `BTreeMap` is cheap, keeps the dump ordering
//! deterministic, and needs no unsafe or external crates.
//!
//! Conventions: dotted lowercase names (`parse.lines`,
//! `parse.unrecognized_lines`, `instances.count`); `rss.peak_kb[.stage]`
//! gauges carry the peak resident set read from `/proc/self/status` on
//! Linux (portable fallback: absent). Counters and histograms over
//! pipeline inputs are deterministic at any thread count; `rss.*` gauges
//! are not, and determinism checks skip them.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// A histogram with caller-fixed bucket bounds: `buckets[i]` counts values
/// `<= bounds[i]`, with one final overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries (last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram with the given inclusive upper bounds. Public so
    /// hot paths (the rd-serve event loop) can accumulate into a local
    /// histogram and fold it into the registry once per batch via
    /// [`histogram_merge`] instead of taking the registry mutex per value.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let slot = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another histogram's buckets into this one. The two must share
    /// bounds; mismatched shapes are ignored under `debug_assert`.
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds != other.bounds {
            debug_assert!(false, "histogram merge with mismatched bounds");
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// interpolating linearly inside the winning bucket — the same
    /// convention as Prometheus's `histogram_quantile`. Values landing in
    /// the overflow bucket are reported as the highest finite bound (a
    /// deliberate under-estimate: fixed-bucket histograms cannot see past
    /// their last bound). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if *bucket == 0 {
                continue;
            }
            let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
            if cumulative + bucket >= rank {
                let Some(upper) = self.bounds.get(i) else {
                    // Overflow bucket: clamp to the last finite bound.
                    return self.bounds.last().copied().unwrap_or(0);
                };
                let into = (rank - cumulative) as f64 / *bucket as f64;
                return lower + ((*upper - lower) as f64 * into).round() as u64;
            }
            cumulative += bucket;
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// One registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write (or max-tracked) gauge.
    Gauge(i64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
    f(&mut REGISTRY.lock().expect("metrics registry poisoned"))
}

/// Adds `n` to the named counter (creating it at zero).
pub fn counter_add(name: &str, n: u64) {
    with_registry(|reg| match reg.entry(name.to_string()).or_insert(Metric::Counter(0)) {
        Metric::Counter(v) => *v += n,
        other => debug_assert!(false, "{name} is not a counter: {other:?}"),
    });
}

/// Sets the named gauge.
pub fn gauge_set(name: &str, value: i64) {
    with_registry(|reg| match reg.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
        Metric::Gauge(v) => *v = value,
        other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
    });
}

/// Raises the named gauge to `value` if larger (peak tracking).
pub fn gauge_max(name: &str, value: i64) {
    with_registry(|reg| match reg.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
        Metric::Gauge(v) => *v = (*v).max(value),
        other => debug_assert!(false, "{name} is not a gauge: {other:?}"),
    });
}

/// Records `value` into the named fixed-bucket histogram. The first call
/// fixes the bounds; later calls reuse them (`bounds` is then ignored).
pub fn histogram_record(name: &str, value: u64, bounds: &[u64]) {
    with_registry(|reg| {
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.record(value),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    });
}

/// Registers an empty histogram with the given bounds if the name is not
/// already taken. Servers pre-register their metric families at startup
/// so `/metrics` exposes every family (at zero) before the first
/// observation — scrape contracts can then assert presence uncondition-
/// ally instead of racing the first request.
pub fn histogram_register(name: &str, bounds: &[u64]) {
    with_registry(|reg| {
        reg.entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)));
    });
}

/// Merges a locally-accumulated histogram into the named registry
/// histogram under a single registry lock — the batched alternative to
/// per-value [`histogram_record`] calls for paths that observe hundreds
/// of values per event-loop round. The first merge installs a copy.
pub fn histogram_merge(name: &str, local: &Histogram) {
    if local.is_empty() {
        return;
    }
    with_registry(|reg| {
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(&local.bounds)))
        {
            Metric::Histogram(h) => h.merge(local),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    });
}

/// Clears every metric (tests and determinism comparisons).
pub fn reset() {
    with_registry(|reg| reg.clear());
}

/// A deterministic copy of the registry (sorted by name).
pub fn snapshot() -> Vec<(String, Metric)> {
    with_registry(|reg| reg.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
}

/// The process's peak resident set size in kB, from `/proc/self/status`
/// (`VmHWM`). `None` where the proc filesystem is unavailable — the
/// portable fallback is to simply not record the gauge.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Records the current peak RSS under `rss.peak_kb` and, when `label` is
/// non-empty, `rss.peak_kb.<label>` — the per-stage memory high-water
/// marks the bench harness folds into `BENCH_repro.json`.
pub fn record_peak_rss(label: &str) {
    let Some(kb) = peak_rss_kb() else {
        return;
    };
    gauge_max("rss.peak_kb", kb as i64);
    if !label.is_empty() {
        gauge_max(&format!("rss.peak_kb.{label}"), kb as i64);
    }
}

/// Renders the registry as an aligned text table, one metric per line,
/// sorted by name (`rdx --metrics`).
pub fn dump() -> String {
    let mut out = String::new();
    let snap = snapshot();
    if snap.is_empty() {
        return "no metrics recorded\n".to_string();
    }
    let width = snap.iter().map(|(name, _)| name.len()).max().unwrap_or(0).max(6);
    let _ = writeln!(out, "{:<width$} {:>14}", "metric", "value");
    for (name, metric) in snap {
        match metric {
            Metric::Counter(v) => {
                let _ = writeln!(out, "{name:<width$} {v:>14}");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "{name:<width$} {v:>14}");
            }
            Metric::Histogram(h) => {
                let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
                let _ = writeln!(
                    out,
                    "{name:<width$} {:>14} (sum {}, mean {mean:.1}, buckets {:?} ≤ {:?})",
                    h.count, h.sum, h.buckets, h.bounds
                );
            }
        }
    }
    out
}

/// Renders the registry as a JSON object (every line indented by
/// `indent`), for the `metrics` section of `BENCH_repro.json`.
pub fn render_json(indent: &str) -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return "{}".to_string();
    }
    let body: Vec<String> = snap
        .iter()
        .map(|(name, metric)| {
            let name = crate::json::escape(name);
            match metric {
                Metric::Counter(v) => format!("{indent}  \"{name}\": {v}"),
                Metric::Gauge(v) => format!("{indent}  \"{name}\": {v}"),
                Metric::Histogram(h) => format!(
                    "{indent}  \"{name}\": {{\"count\": {}, \"sum\": {}, \"bounds\": {:?}, \"buckets\": {:?}}}",
                    h.count, h.sum, h.bounds, h.buckets
                ),
            }
        })
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Maps a dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and other illegal characters become
/// underscores, and a leading digit gets an underscore prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

static BUILD_INFO: Mutex<Option<(String, Instant)>> = Mutex::new(None);

/// Declares the running build for `/metrics`: adds an
/// `rd_build_info{version="..."} 1` gauge and starts the
/// `process_uptime_seconds` clock. Called once by server startup; the
/// lines appear only in [`render_prometheus`], never in the
/// deterministic dump/JSON renderings, so analysis-output comparisons
/// stay byte-stable.
pub fn set_build_info(version: &str) {
    let mut info = BUILD_INFO.lock().expect("build info poisoned");
    if info.is_none() {
        *info = Some((version.to_string(), Instant::now()));
    }
}

fn build_info() -> Option<(String, Instant)> {
    BUILD_INFO.lock().expect("build info poisoned").clone()
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4), sorted by metric name — served at `/metrics` by
/// `rdx serve`. When [`set_build_info`] has been called, the
/// `rd_build_info` and `process_uptime_seconds` gauges are appended
/// after the sorted registry families.
///
/// Counters gain a `_total` suffix per convention; histograms render as
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (name, metric) in snapshot() {
        let pname = prometheus_name(&name);
        match metric {
            Metric::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname}_total counter");
                let _ = writeln!(out, "{pname}_total {v}");
            }
            Metric::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {v}");
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += count;
                    let _ = writeln!(out, "{pname}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{pname}_sum {}", h.sum);
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    if let Some((version, started)) = build_info() {
        let _ = writeln!(out, "# TYPE rd_build_info gauge");
        let _ = writeln!(out, "rd_build_info{{version=\"{}\"}} 1", crate::json::escape(&version));
        let _ = writeln!(out, "# TYPE process_uptime_seconds gauge");
        let _ = writeln!(out, "process_uptime_seconds {:.3}", started.elapsed().as_secs_f64());
    }
    out
}

/// Lints text in the Prometheus exposition format, returning the first
/// problem found. Checks, per the format spec: sample and `# TYPE` names
/// stay in the legal charset; every sample line carries a numeric value;
/// for each declared histogram, `_bucket{le=...}` counts are cumulative
/// (non-decreasing), the series ends with `le="+Inf"`, the `+Inf` bucket
/// equals `_count`, and `_sum`/`_count` are present.
///
/// This backs the format contract test on [`render_prometheus`] and is
/// cheap enough for integration tests to run against a live `/metrics`
/// scrape.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    fn name_ok(name: &str) -> bool {
        let mut chars = name.chars();
        let Some(first) = chars.next() else {
            return false;
        };
        (first.is_ascii_alphabetic() || first == '_' || first == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut histograms: Vec<String> = Vec::new();
    let mut samples: Vec<(String, String, f64)> = Vec::new(); // (name, labels, value)
    for (lineno, line) in text.lines().enumerate() {
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return err("malformed TYPE comment");
            };
            if !name_ok(name) {
                return err("illegal metric name in TYPE");
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return err("unknown metric type");
            }
            if kind == "histogram" {
                histograms.push(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !name_ok(name) {
            return err("illegal sample name");
        }
        let rest = &line[name_end..];
        let (labels, value_text) = if let Some(rest) = rest.strip_prefix('{') {
            let Some(close) = rest.find('}') else {
                return err("unterminated label set");
            };
            (&rest[..close], rest[close + 1..].trim())
        } else {
            ("", rest.trim())
        };
        let Ok(value) = value_text.parse::<f64>() else {
            return err("non-numeric sample value");
        };
        samples.push((name.to_string(), labels.to_string(), value));
    }

    for h in &histograms {
        let buckets: Vec<&(String, String, f64)> =
            samples.iter().filter(|(n, _, _)| n == &format!("{h}_bucket")).collect();
        if buckets.is_empty() {
            return Err(format!("histogram {h}: no _bucket series"));
        }
        let mut prev = f64::MIN;
        for (_, labels, value) in &buckets {
            if !labels.contains("le=\"") {
                return Err(format!("histogram {h}: bucket without le label"));
            }
            if *value < prev {
                return Err(format!("histogram {h}: bucket counts not cumulative"));
            }
            prev = *value;
        }
        let (_, last_labels, inf_count) = buckets[buckets.len() - 1];
        if !last_labels.contains("le=\"+Inf\"") {
            return Err(format!("histogram {h}: last bucket must be le=\"+Inf\""));
        }
        let count = samples.iter().find(|(n, _, _)| n == &format!("{h}_count"));
        let Some((_, _, count)) = count else {
            return Err(format!("histogram {h}: missing _count"));
        };
        if (inf_count - count).abs() > f64::EPSILON {
            return Err(format!("histogram {h}: +Inf bucket ({inf_count}) != _count ({count})"));
        }
        if !samples.iter().any(|(n, _, _)| n == &format!("{h}_sum")) {
            return Err(format!("histogram {h}: missing _sum"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test function: the registry is process-global state and `cargo
    // test` runs #[test] functions concurrently.
    #[test]
    fn registry_lifecycle() {
        reset();
        counter_add("t.files", 2);
        counter_add("t.files", 3);
        gauge_set("t.gauge", 7);
        gauge_max("t.gauge", 5); // lower: ignored
        gauge_max("t.gauge", 11);
        for v in [1, 8, 9, 100] {
            histogram_record("t.hist", v, &[8, 16]);
        }

        let snap: BTreeMap<String, Metric> = snapshot().into_iter().collect();
        assert_eq!(snap["t.files"], Metric::Counter(5));
        assert_eq!(snap["t.gauge"], Metric::Gauge(11));
        match &snap["t.hist"] {
            Metric::Histogram(h) => {
                assert_eq!(h.buckets, vec![2, 1, 1]);
                assert_eq!((h.count, h.sum), (4, 118));
            }
            other => panic!("wrong metric: {other:?}"),
        }

        let text = dump();
        assert!(text.contains("t.files") && text.contains("5"));
        let json = render_json("  ");
        assert!(json.contains("\"t.files\": 5"));
        assert!(json.contains("\"count\": 4"));
        crate::json::validate_object(&json.replace('\n', " ")).unwrap();

        let prom = render_prometheus();
        assert!(prom.contains("# TYPE t_files_total counter"));
        assert!(prom.contains("t_files_total 5"));
        assert!(prom.contains("# TYPE t_gauge gauge"));
        assert!(prom.contains("t_gauge 11"));
        assert!(prom.contains("t_hist_bucket{le=\"8\"} 2"));
        assert!(prom.contains("t_hist_bucket{le=\"16\"} 3"));
        assert!(prom.contains("t_hist_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("t_hist_sum 118"));
        assert!(prom.contains("t_hist_count 4"));
        assert_eq!(prometheus_name("9lives.x-y"), "_9lives_x_y");

        // The exposition output passes its own format lint, and the lint
        // actually catches the failure modes it claims to.
        lint_prometheus(&prom).expect("rendered exposition must lint clean");
        let broken = [
            // Buckets not cumulative.
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
            // Missing +Inf terminator.
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
            // +Inf bucket disagrees with _count.
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
            // Missing _sum.
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
            // Non-numeric value and illegal name.
            "ok_metric nope\n",
            "9bad_name 1\n",
        ];
        for text in broken {
            assert!(lint_prometheus(text).is_err(), "lint accepted: {text:?}");
        }

        // Pre-registration exposes an empty family; later records reuse
        // its bounds.
        histogram_register("t.pre", &[10, 20]);
        histogram_register("t.pre", &[999]); // second registration: no-op
        let snap: BTreeMap<String, Metric> = snapshot().into_iter().collect();
        match &snap["t.pre"] {
            Metric::Histogram(h) => {
                assert!(h.is_empty());
                assert_eq!(h.bounds, vec![10, 20]);
            }
            other => panic!("wrong metric: {other:?}"),
        }

        // Build info: appended to the exposition output only, with a
        // ticking uptime gauge — and still lint-clean.
        set_build_info("1.2.3-test");
        set_build_info("9.9.9-ignored"); // first call wins
        let prom = render_prometheus();
        assert!(prom.contains("rd_build_info{version=\"1.2.3-test\"} 1"), "{prom}");
        assert!(prom.contains("# TYPE process_uptime_seconds gauge"), "{prom}");
        lint_prometheus(&prom).expect("exposition with build info must lint clean");
        assert!(!render_json("").contains("build_info"));
        assert!(!dump().contains("uptime"));

        // Batched merge: a local histogram folds in under one lock.
        let mut local = Histogram::new(&[8, 16]);
        for v in [2, 3, 50] {
            local.record(v);
        }
        histogram_merge("t.hist", &local);
        histogram_merge("t.hist", &Histogram::new(&[8, 16])); // empty: no-op
        let snap: BTreeMap<String, Metric> = snapshot().into_iter().collect();
        match &snap["t.hist"] {
            Metric::Histogram(h) => {
                assert_eq!(h.buckets, vec![4, 1, 2]);
                assert_eq!((h.count, h.sum), (7, 173));
            }
            other => panic!("wrong metric: {other:?}"),
        }

        // Quantiles: interpolated within buckets, overflow clamps to the
        // last finite bound, empty histograms report zero.
        let mut q = Histogram::new(&[100, 200, 400]);
        assert_eq!(q.quantile(0.5), 0);
        for v in [50, 50, 150, 150, 150, 150, 150, 150, 350, 9999] {
            q.record(v);
        }
        assert_eq!(q.quantile(0.0), 50);
        assert!(q.quantile(0.5) > 100 && q.quantile(0.5) <= 200);
        assert_eq!(q.quantile(0.9), 400); // 9th of 10 sits in (200, 400]
        assert_eq!(q.quantile(1.0), 400); // overflow clamps to last bound

        // Peak RSS: on Linux this must parse; elsewhere it may be None.
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().unwrap() > 0);
            record_peak_rss("stage");
            let snap: BTreeMap<String, Metric> = snapshot().into_iter().collect();
            assert!(matches!(snap["rss.peak_kb"], Metric::Gauge(v) if v > 0));
            assert!(snap.contains_key("rss.peak_kb.stage"));
        }

        reset();
        assert!(snapshot().is_empty());
        assert_eq!(render_json(""), "{}");
    }
}
