//! Structured tracing: point events and scoped spans with key–value
//! fields, serialized as one JSON object per line (JSONL).
//!
//! # Sinks
//!
//! Tracing is off until a sink is installed. Binaries call
//! [`init_from_env`], which honors:
//!
//! - `RD_TRACE=<path>` — append-free overwrite of `<path>` with JSONL
//!   (`RD_TRACE=stderr` or `RD_TRACE=-` selects stderr instead);
//! - `RD_TRACE_ZERO=1` — zero every `ts_us`/`dur_us` at serialization
//!   time, making runs byte-comparable across machines and thread counts.
//!
//! Tests install an in-process [`install_memory_sink`] and read lines back
//! with [`take_memory`].
//!
//! # Determinism
//!
//! Events are timestamped in microseconds since process start. Worker
//! threads never write to the sink directly: `rd_par::par_map` wraps each
//! work item in [`scoped`], which collects the item's events into a
//! per-item buffer, and flushes the buffers in **input order** via
//! [`emit_events`] — nested fan-outs compose, because a flush on a worker
//! thread lands in that worker's own enclosing item buffer. With
//! timestamps zeroed the emitted byte stream is therefore identical at any
//! `RD_THREADS` setting.
//!
//! # Event schema
//!
//! ```text
//! {"ev":"event","name":"parse.file","ts_us":1201,"fields":{"file":"config1","lines":42}}
//! {"ev":"span_open","name":"analyze","ts_us":1890,"fields":{"routers":79}}
//! {"ev":"span_close","name":"analyze","ts_us":2544,"dur_us":654,"fields":{"routers":79}}
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape;

/// Environment variable selecting the trace sink (`<path>`, `stderr`, `-`).
pub const TRACE_ENV: &str = "RD_TRACE";
/// Environment variable zeroing timestamps (`1`): byte-stable output.
pub const TRACE_ZERO_ENV: &str = "RD_TRACE_ZERO";

/// A field value. Only types with an exact, locale-free rendering are
/// offered, so serialized traces are byte-stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// A string field.
    Str(String),
    /// An integer field.
    Int(i64),
    /// A boolean field.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point event.
    Event,
    /// A span opening.
    SpanOpen,
    /// A span closing (carries `dur_us`).
    SpanClose,
}

impl EventKind {
    fn label(self) -> &'static str {
        match self {
            EventKind::Event => "event",
            EventKind::SpanOpen => "span_open",
            EventKind::SpanClose => "span_close",
        }
    }
}

/// One trace record, held structured until serialization so buffered
/// events can be re-emitted in input order by the parallel layer.
#[derive(Clone, Debug)]
pub struct Event {
    /// Point event or span boundary.
    pub kind: EventKind,
    /// Event name (dotted lowercase by convention, e.g. `parse.file`).
    pub name: String,
    /// Microseconds since process start (zeroed under `RD_TRACE_ZERO`).
    pub ts_us: u64,
    /// Span duration in microseconds (span closes only).
    pub dur_us: Option<u64>,
    /// Key–value fields, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Serializes to one JSONL line (no trailing newline). `zero_ts`
    /// rewrites `ts_us`/`dur_us` to 0 for byte-stable comparisons.
    pub fn render(&self, zero_ts: bool) -> String {
        let mut out = String::with_capacity(64);
        let ts = if zero_ts { 0 } else { self.ts_us };
        write!(
            out,
            "{{\"ev\":\"{}\",\"name\":\"{}\",\"ts_us\":{ts}",
            self.kind.label(),
            escape(&self.name)
        )
        .expect("string write");
        if let Some(dur) = self.dur_us {
            let dur = if zero_ts { 0 } else { dur };
            write!(out, ",\"dur_us\":{dur}").expect("string write");
        }
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":", escape(key)).expect("string write");
            match value {
                Value::Str(s) => write!(out, "\"{}\"", escape(s)).expect("string write"),
                Value::Int(n) => write!(out, "{n}").expect("string write"),
                Value::Bool(b) => write!(out, "{b}").expect("string write"),
            }
        }
        out.push_str("}}");
        out
    }
}

enum SinkKind {
    Stderr,
    File(std::io::BufWriter<std::fs::File>),
    Memory(Vec<String>),
}

struct SinkState {
    kind: SinkKind,
    zero_ts: bool,
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static BUFFERS: RefCell<Vec<Vec<Event>>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// True when a sink is installed. Cheap (one relaxed atomic load); callers
/// on hot paths should guard field construction with it.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn install(state: Option<SinkState>) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(SinkState { kind: SinkKind::File(w), .. }) = sink.as_mut() {
        let _ = w.flush();
    }
    ENABLED.store(state.is_some(), Ordering::Relaxed);
    *sink = state;
}

fn zero_from_env() -> bool {
    std::env::var(TRACE_ZERO_ENV).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Installs the sink named by `RD_TRACE` (no-op when unset): a file path,
/// or `stderr`/`-` for stderr. `RD_TRACE_ZERO=1` zeroes timestamps.
pub fn init_from_env() -> Result<(), std::io::Error> {
    let Ok(target) = std::env::var(TRACE_ENV) else {
        return Ok(());
    };
    if target == "stderr" || target == "-" {
        set_stderr_sink();
        Ok(())
    } else {
        set_file_sink(&target)
    }
}

/// Traces to stderr (timestamp zeroing still honors `RD_TRACE_ZERO`).
pub fn set_stderr_sink() {
    install(Some(SinkState { kind: SinkKind::Stderr, zero_ts: zero_from_env() }));
}

/// Traces to `path`, truncating any previous contents.
pub fn set_file_sink(path: &str) -> Result<(), std::io::Error> {
    let file = std::fs::File::create(path)?;
    install(Some(SinkState {
        kind: SinkKind::File(std::io::BufWriter::new(file)),
        zero_ts: zero_from_env(),
    }));
    Ok(())
}

/// Traces into an in-process buffer, for tests; read back with
/// [`take_memory`]. `zero_timestamps` forces byte-stable lines.
pub fn install_memory_sink(zero_timestamps: bool) {
    install(Some(SinkState { kind: SinkKind::Memory(Vec::new()), zero_ts: zero_timestamps }));
}

/// Drains the memory sink's lines (empty for other sink kinds).
pub fn take_memory() -> Vec<String> {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    match sink.as_mut() {
        Some(SinkState { kind: SinkKind::Memory(lines), .. }) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

/// Uninstalls the sink (flushing file sinks); tracing becomes a no-op.
pub fn clear_sink() {
    install(None);
}

/// Flushes buffered sink output (file sinks buffer aggressively). Binaries
/// call this before exiting.
pub fn flush() {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(SinkState { kind: SinkKind::File(w), .. }) = sink.as_mut() {
        let _ = w.flush();
    }
}

fn write_to_sink(events: &[Event]) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    let Some(state) = sink.as_mut() else {
        return;
    };
    match &mut state.kind {
        SinkKind::Stderr => {
            let err = std::io::stderr();
            let mut lock = err.lock();
            for e in events {
                let _ = writeln!(lock, "{}", e.render(state.zero_ts));
            }
        }
        SinkKind::File(w) => {
            for e in events {
                let _ = writeln!(w, "{}", e.render(state.zero_ts));
            }
        }
        SinkKind::Memory(lines) => {
            for e in events {
                lines.push(e.render(state.zero_ts));
            }
        }
    }
}

fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let buffered = BUFFERS.with(|b| {
        let mut stack = b.borrow_mut();
        match stack.last_mut() {
            Some(top) => {
                top.push(event.clone());
                true
            }
            None => false,
        }
    });
    if !buffered {
        write_to_sink(std::slice::from_ref(&event));
    }
}

fn owned_fields(fields: &[(&str, Value)]) -> Vec<(String, Value)> {
    fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

/// Records a point event (no-op without a sink).
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    emit(Event {
        kind: EventKind::Event,
        name: name.to_string(),
        ts_us: now_us(),
        dur_us: None,
        fields: owned_fields(fields),
    });
}

/// Opens a span: emits `span_open` now and `span_close` (with `dur_us`)
/// when the returned guard drops. Inert without a sink.
pub fn span(name: &str, fields: &[(&str, Value)]) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let fields = owned_fields(fields);
    emit(Event {
        kind: EventKind::SpanOpen,
        name: name.to_string(),
        ts_us: now_us(),
        dur_us: None,
        fields: fields.clone(),
    });
    SpanGuard { inner: Some((name.to_string(), fields, Instant::now())) }
}

/// Guard returned by [`span`]; closes the span on drop.
pub struct SpanGuard {
    inner: Option<(String, Vec<(String, Value)>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, fields, started)) = self.inner.take() else {
            return;
        };
        emit(Event {
            kind: EventKind::SpanClose,
            name,
            ts_us: now_us(),
            dur_us: Some(started.elapsed().as_micros() as u64),
            fields,
        });
    }
}

/// Runs `f` with a fresh event buffer on this thread's stack and returns
/// the events it raised alongside its result. The parallel layer uses this
/// to capture one work item's events; flush them with [`emit_events`] in
/// input order. Free (empty buffer, no allocation) when tracing is off.
pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    if !enabled() {
        return (f(), Vec::new());
    }
    BUFFERS.with(|b| b.borrow_mut().push(Vec::new()));
    // Pop the buffer even if `f` panics, so a caught panic (e.g. in tests)
    // cannot leave a stale buffer swallowing later events.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            BUFFERS.with(|b| {
                b.borrow_mut().pop();
            });
        }
    }
    let events = {
        let _guard = PopOnDrop;
        let result = f();
        let events =
            BUFFERS.with(|b| std::mem::take(b.borrow_mut().last_mut().expect("buffer pushed")));
        (result, events)
    };
    events
}

/// Re-emits previously captured events: into the current thread's active
/// buffer if one exists (nested fan-out), else straight to the sink.
pub fn emit_events(events: Vec<Event>) {
    if events.is_empty() || !enabled() {
        return;
    }
    let buffered = BUFFERS.with(|b| {
        let mut stack = b.borrow_mut();
        match stack.last_mut() {
            Some(top) => {
                top.extend(events.iter().cloned());
                true
            }
            None => false,
        }
    });
    if !buffered {
        write_to_sink(&events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test function: the sink is process-global state.
    #[test]
    fn sink_buffering_and_rendering() {
        // Rendering is exact and zeroable.
        let e = Event {
            kind: EventKind::SpanClose,
            name: "analyze".into(),
            ts_us: 123,
            dur_us: Some(45),
            fields: vec![("net".into(), "net5".into()), ("routers".into(), 881usize.into())],
        };
        assert_eq!(
            e.render(false),
            r#"{"ev":"span_close","name":"analyze","ts_us":123,"dur_us":45,"fields":{"net":"net5","routers":881}}"#
        );
        assert_eq!(
            e.render(true),
            r#"{"ev":"span_close","name":"analyze","ts_us":0,"dur_us":0,"fields":{"net":"net5","routers":881}}"#
        );

        // Disabled: everything is a no-op.
        clear_sink();
        assert!(!enabled());
        event("ignored", &[]);
        assert!(take_memory().is_empty());

        // Memory sink captures in order; spans open and close.
        install_memory_sink(true);
        assert!(enabled());
        {
            let _span = span("outer", &[("k", Value::Int(1))]);
            event("inner", &[("s", "x".into())]);
        }
        let lines = take_memory();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"span_open\"") && lines[0].contains("\"outer\""));
        assert!(lines[1].contains("\"inner\""));
        assert!(lines[2].contains("\"span_close\"") && lines[2].contains("\"dur_us\":0"));
        for line in &lines {
            crate::json::validate_event_line(line).unwrap();
        }

        // Scoped capture holds events back; emit_events releases them.
        let ((), captured) = scoped(|| event("buffered", &[]));
        assert_eq!(captured.len(), 1);
        assert!(take_memory().is_empty(), "scoped events must not hit the sink");
        emit_events(captured);
        assert_eq!(take_memory().len(), 1);

        // Nested scopes: the inner flush lands in the outer buffer.
        let ((), outer) = scoped(|| {
            let ((), inner) = scoped(|| event("deep", &[]));
            emit_events(inner);
            event("after", &[]);
        });
        assert_eq!(outer.len(), 2);
        assert_eq!(outer[0].name, "deep");
        assert_eq!(outer[1].name, "after");

        clear_sink();
    }
}
