//! Observability for the analysis pipeline: structured tracing, a metrics
//! registry, and first-class diagnostics — all in-tree, with no external
//! dependencies, matching the workspace's offline build policy.
//!
//! The paper's workflow (Section 8.1) is an operator interrogating
//! thousands of configuration files; at that scale, silently dropping a
//! line or a file corrupts every downstream abstraction. This crate is how
//! a run explains *what it saw and what it ignored*, not just how long it
//! took:
//!
//! - [`trace`]: `span!`-style scoped regions and point events with
//!   key–value fields, emitted as deterministic JSONL to a sink chosen at
//!   runtime (`RD_TRACE=<path|stderr>`, or `rdx`/`repro --trace <path>`).
//!   Events raised inside `rd_par::par_map` workers are buffered per work
//!   item and flushed in input order, so the event sequence is
//!   byte-identical at any `RD_THREADS` setting once timestamps are zeroed
//!   (`RD_TRACE_ZERO=1`).
//! - [`metrics`]: named counters, gauges, and fixed-bucket histograms
//!   (e.g. `parse.lines`, `parse.unrecognized_lines`, `instances.count`,
//!   and a `rss.peak_kb` gauge read from `/proc/self/status` on Linux).
//!   Dumped by `rdx --metrics` and folded into `BENCH_repro.json`.
//! - [`diag`]: per-file/per-line diagnostics (unknown stanza, dangling
//!   policy reference, ambiguous structure) with severity, carried through
//!   `ioscfg` → `nettopo` → `routing-model` instead of being dropped, and
//!   surfaced by `rdx <dir> diag`.
//! - [`profile`]: RAII hierarchical wall-clock spans (the [`span!`] macro)
//!   aggregated into collapsed-stack output for flamegraph tooling,
//!   enabled by `rdx`/`repro --profile <path>` and byte-identical across
//!   thread counts under `RD_PROF_ZERO=1`.
//! - [`json`]: the tiny JSON escaping/validation helpers behind all of the
//!   above, plus the `trace_check` self-check binary that `scripts/verify.sh`
//!   runs over emitted trace files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use profile::ProfSpan;
pub use trace::{Event, SpanGuard, Value};

/// Opens a profiling span ([`profile::span`]) named by a string literal or
/// `format!`-style arguments: `span!("parse")`, `span!("parse:{}", name)`.
/// A lone literal is passed through verbatim (no allocation, no `{}`
/// interpolation); use the multi-argument form for dynamic names.
/// Returns the RAII [`ProfSpan`] guard; bind it (`let _span = ...`) so the
/// span covers the intended scope. Costs one atomic load when profiling
/// is disabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::profile::span($name)
    };
    ($($arg:tt)*) => {
        $crate::profile::span(&format!($($arg)*))
    };
}
