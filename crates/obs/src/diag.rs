//! First-class diagnostics: what the pipeline saw and chose not to (or
//! could not) use, kept with file/line/severity instead of being dropped.
//!
//! The parser is deliberately tolerant — real corpora always contain
//! commands outside any grammar — but tolerance without a record is silent
//! data loss. Every layer that skips or distrusts something records a
//! [`Diagnostic`] here: `ioscfg` for unknown stanzas and dangling policy
//! references, `nettopo` for corpus-level anomalies, `routing-model` for
//! suspicious design structure. `rdx <dir> diag` prints the merged stream.

use std::fmt;

/// How much a diagnostic undermines the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation; the analysis is unaffected.
    Info,
    /// Input was skipped or guessed at; derived results may be partial.
    Warning,
    /// The configuration references something that does not exist; the
    /// derived design is likely wrong around it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic, located at a file (and line, when meaningful).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Source configuration file name.
    pub file: String,
    /// 1-based source line; 0 when the diagnostic is file-scoped (e.g. a
    /// reference that is missing rather than present-but-wrong).
    pub line: usize,
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case, e.g. `unknown-stanza`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: ", self.file, self.line)?;
        } else {
            write!(f, "{}: ", self.file)?;
        }
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)
    }
}

/// An ordered collection of diagnostics (file/load order, so output is
/// deterministic at any thread count).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// The diagnostics, in the order recorded.
    pub list: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.list.push(d);
    }

    /// Appends many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.list.extend(ds);
    }

    /// Number recorded.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Iterates in recorded order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.list.iter()
    }

    /// Count at one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.list.iter().filter(|d| d.severity == severity).count()
    }

    /// `(errors, warnings, infos)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        )
    }

    /// True when any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.list.iter().any(|d| d.severity == Severity::Error)
    }

    /// One-line summary, e.g. `2 errors, 3 warnings, 0 info`.
    pub fn summary(&self) -> String {
        let (e, w, i) = self.counts();
        format!(
            "{e} error{}, {w} warning{}, {i} info",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
        )
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.list {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(file: &str, line: usize, severity: Severity, code: &'static str) -> Diagnostic {
        Diagnostic { file: file.into(), line, severity, code, message: "m".into() }
    }

    #[test]
    fn counts_and_summary() {
        let mut ds = Diagnostics::new();
        ds.push(d("config1", 3, Severity::Warning, "unknown-stanza"));
        ds.push(d("config1", 0, Severity::Error, "undefined-acl"));
        ds.push(d("config2", 9, Severity::Info, "note"));
        assert_eq!(ds.counts(), (1, 1, 1));
        assert!(ds.has_errors());
        assert_eq!(ds.summary(), "1 error, 1 warning, 1 info");
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn display_includes_location_when_present() {
        let with_line = d("config1", 3, Severity::Warning, "unknown-stanza").to_string();
        assert_eq!(with_line, "config1:3: warning [unknown-stanza] m");
        let file_scoped = d("config1", 0, Severity::Error, "undefined-acl").to_string();
        assert_eq!(file_scoped, "config1: error [undefined-acl] m");
    }

    #[test]
    fn severity_orders_by_weight() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
