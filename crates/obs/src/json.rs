//! Minimal JSON helpers: string escaping for the trace emitter and a
//! validating parser for the `trace_check` self-check. Hand-rolled so the
//! workspace stays free of external dependencies.

/// Escapes a string for embedding in a JSON string literal (adds no
/// surrounding quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `line` is one syntactically correct JSON object and
/// returns its top-level keys. This is a recognizer, not a full parser:
/// values are checked for well-formedness but not materialized.
pub fn validate_object(line: &str) -> Result<Vec<String>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(keys)
}

/// Validates one trace line: a JSON object carrying at least the required
/// event keys (`ev`, `name`, `ts_us`).
pub fn validate_event_line(line: &str) -> Result<(), String> {
    let keys = validate_object(line)?;
    for required in ["ev", "name", "ts_us"] {
        if !keys.iter().any(|k| k == required) {
            return Err(format!("missing required key {required:?}"));
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn object(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(keys);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') | Some(b'f') => {}
                        Some(b'u') => {
                            for _ in 0..4 {
                                self.pos += 1;
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos
                                    ));
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // continuation bytes are always well-formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    // Invariant: `bytes` came from a `&str`, and the span
                    // covers a whole character, so it is valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("span of a &str is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("bad number at byte {start}"));
            }
        }
        Ok(())
    }

    fn literal(&mut self, text: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object().map(|_| ()),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn validates_well_formed_objects() {
        let keys = validate_object(
            r#"{"ev":"event","name":"x","ts_us":0,"fields":{"a":1,"b":[true,null,-2.5e3]}}"#,
        )
        .unwrap();
        assert_eq!(keys, vec!["ev", "name", "ts_us", "fields"]);
        assert!(validate_object("{}").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate_object("").is_err());
        assert!(validate_object("{").is_err());
        assert!(validate_object(r#"{"a":}"#).is_err());
        assert!(validate_object(r#"{"a":1} extra"#).is_err());
        assert!(validate_object(r#"{"a":01e}"#).is_err());
        assert!(validate_object(r#"["not","an","object"]"#).is_err());
    }

    #[test]
    fn event_lines_need_required_keys() {
        assert!(validate_event_line(r#"{"ev":"event","name":"x","ts_us":12}"#).is_ok());
        assert!(validate_event_line(r#"{"ev":"event","name":"x"}"#).is_err());
        assert!(validate_event_line(r#"{"name":"x","ts_us":0}"#).is_err());
    }

    #[test]
    fn unicode_strings_survive_validation() {
        assert!(validate_object("{\"k\":\"héllo → wörld\"}").is_ok());
        assert!(validate_object(r#"{"k":"é\n"}"#).is_ok());
    }
}
