//! A keep-alive HTTP load generator for `rd-serve`: N connections, each
//! pipelining batches of mixed-endpoint GETs, with exact latency
//! percentiles from every response.
//!
//! The generator and the server usually share one machine (and in CI one
//! core), so the design optimizes for syscall economy over realism: each
//! connection writes a whole batch of requests in one `write`, then
//! drains the batch's responses through a chunked reader. Latency is
//! measured per response as *completion minus batch send* — the number a
//! pipelined client actually experiences, including queueing behind its
//! own batch. Percentiles are exact (every latency is kept and sorted),
//! not histogram-bucketed, since a few million `u64`s are cheap.
//!
//! Used by `repro --bench` for the `bench_serve` section of
//! `BENCH_repro.json` and by the standalone `loadgen` binary that
//! verify.sh drives against a live `rdx serve`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load shape: how many connections, how deep each pipeline batch is,
/// how long to run, and which paths to cycle through.
pub struct LoadOptions {
    /// Concurrent keep-alive connections (each gets its own thread).
    pub conns: usize,
    /// Requests pipelined per write on each connection.
    pub pipeline: usize,
    /// How long to keep issuing batches (time-bounded mode). Ignored
    /// when [`max_batches`](LoadOptions::max_batches) is set.
    pub duration: Duration,
    /// Batch-count mode: each connection issues exactly this many
    /// batches (`max_batches * pipeline` requests) instead of running
    /// until the deadline — a deterministic request count for
    /// comparisons across machines of different speeds.
    pub max_batches: Option<u64>,
    /// Request paths, cycled per request. Must be non-empty by the time
    /// [`run`] is called; empty means "let the caller fill in the
    /// standard mix" (see [`mixed_paths`]).
    pub paths: Vec<String>,
    /// Extra connection attempts after the first fails (capped-backoff
    /// spaced), so a server still binding — or an `rdx watch` daemon
    /// mid-boot — does not fail the whole run on a refused connect.
    pub connect_retries: u32,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        // Tuned on the CI box (one core shared with the server): two
        // connections keep both sides busy without scheduler thrash, and
        // 4-deep pipelines amortize syscalls while keeping p99 under the
        // old threaded server's p50 — deeper pipelines buy a little more
        // throughput but each response then queues behind its whole
        // batch (32-deep more than triples p99 for <10% extra req/s).
        LoadOptions {
            conns: 2,
            pipeline: 4,
            duration: Duration::from_secs(3),
            max_batches: None,
            paths: Vec::new(),
            connect_retries: 3,
        }
    }
}

/// Connects to `addr`, retrying up to `retries` additional times with
/// capped exponential spacing (50 ms, 100 ms, 200 ms, … capped at
/// 500 ms). Returns the last error when every attempt fails.
pub fn connect_with_retries(addr: SocketAddr, retries: u32) -> Result<TcpStream, String> {
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(_) if attempt < retries => {
                let delay = Duration::from_millis((50u64 << attempt.min(4)).min(500));
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => {
                return Err(format!("connect {addr}: {e} (after {} attempt(s))", attempt + 1))
            }
        }
    }
}

/// Aggregate result of one load run.
pub struct LoadStats {
    /// Responses fully received across all connections.
    pub requests: u64,
    /// Non-200 responses plus I/O failures.
    pub errors: u64,
    /// Wall-clock of the measured window.
    pub duration: Duration,
    /// `requests / duration`.
    pub throughput_rps: f64,
    /// Median response latency, microseconds (batch send → completion).
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
    /// Response body bytes received (sanity signal: zero means the
    /// server sent empty bodies, not that the run went fast).
    pub body_bytes: u64,
    /// Per-path breakdown in `opts.paths` order; paths that saw no
    /// responses are omitted.
    pub endpoints: Vec<EndpointStats>,
}

/// Exact percentiles for one request path, split out of the aggregate so
/// a slow endpoint cannot hide behind a fast mix.
pub struct EndpointStats {
    pub path: String,
    pub requests: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

/// Per-connection tallies merged into [`LoadStats`] at the end.
struct WorkerStats {
    latencies_us: Vec<u64>,
    /// Latencies split by index into `opts.paths`, parallel to
    /// `latencies_us`.
    by_path: Vec<Vec<u64>>,
    errors: u64,
    body_bytes: u64,
}

/// A chunked response reader over one connection: buffers socket reads
/// and splits them into `content-length`-framed responses.
struct ResponseReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
}

impl ResponseReader {
    fn new() -> ResponseReader {
        ResponseReader { buf: Vec::with_capacity(256 * 1024), pos: 0 }
    }

    /// Reads one response; returns `(status, body_len)`.
    fn next_response(&mut self, stream: &mut TcpStream) -> Result<(u16, usize), String> {
        let head_end = loop {
            if let Some(end) = find_terminator(&self.buf[self.pos..]) {
                break self.pos + end;
            }
            self.fill(stream)?;
        };
        let head = &self.buf[self.pos..head_end];
        let status = parse_status(head)?;
        let body_len = parse_content_length(head)?;
        // 304 and HEAD responses elide the body; the generator only
        // issues plain GETs, so only 304 matters here.
        let body_len = if status == 304 { 0 } else { body_len };
        let total = head_end + body_len;
        while self.buf.len() < total {
            self.fill(stream)?;
        }
        self.pos = total;
        // Reclaim the buffer once the unconsumed tail is small.
        if self.pos > 512 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok((status, body_len))
    }

    fn fill(&mut self, stream: &mut TcpStream) -> Result<(), String> {
        let mut chunk = [0u8; 64 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => Err("connection closed mid-response".to_string()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) => Err(format!("read failed: {e}")),
        }
    }
}

/// Index one past `\r\n\r\n` in `buf`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_status(head: &[u8]) -> Result<u16, String> {
    let line = head.split(|b| *b == b'\r').next().unwrap_or(head);
    let text = std::str::from_utf8(line).map_err(|_| "non-UTF-8 status line".to_string())?;
    text.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {text}"))
}

fn parse_content_length(head: &[u8]) -> Result<usize, String> {
    let text = std::str::from_utf8(head).map_err(|_| "non-UTF-8 head".to_string())?;
    text.lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .ok_or_else(|| "response without content-length".to_string())?
        .trim()
        .parse()
        .map_err(|e| format!("bad content-length: {e}"))
}

/// One connection's run loop: batches of pipelined GETs until the
/// deadline (or, in batch-count mode, until `max_batches` batches have
/// been issued). Stops (recording one error) on the first I/O failure.
fn worker(addr: SocketAddr, opts: &LoadOptions, offset: usize) -> Result<WorkerStats, String> {
    let stream = connect_with_retries(addr, opts.connect_retries)?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut stream = stream;
    let mut reader = ResponseReader::new();
    let mut stats = WorkerStats {
        latencies_us: Vec::new(),
        by_path: vec![Vec::new(); opts.paths.len()],
        errors: 0,
        body_bytes: 0,
    };

    // Pre-render each path's request once; batches are concatenations.
    let requests: Vec<Vec<u8>> = opts
        .paths
        .iter()
        .map(|p| format!("GET {p} HTTP/1.1\r\nhost: loadgen\r\n\r\n").into_bytes())
        .collect();
    let mut batch = Vec::with_capacity(opts.pipeline * 64);
    let mut cursor = offset; // connections start on different paths

    let deadline = Instant::now() + opts.duration;
    let mut batches_sent = 0u64;
    loop {
        let done = match opts.max_batches {
            Some(n) => batches_sent >= n,
            None => Instant::now() >= deadline,
        };
        if done {
            break;
        }
        batches_sent += 1;
        batch.clear();
        let base = cursor; // response j below came from path (base + j)
        for i in 0..opts.pipeline {
            batch.extend_from_slice(&requests[(cursor + i) % requests.len()]);
        }
        cursor += opts.pipeline;
        let sent = Instant::now();
        if let Err(e) = stream.write_all(&batch) {
            stats.errors += 1;
            return Err(format!("write failed: {e}"));
        }
        for j in 0..opts.pipeline {
            match reader.next_response(&mut stream) {
                Ok((status, body_len)) => {
                    let latency = sent.elapsed().as_micros() as u64;
                    stats.latencies_us.push(latency);
                    stats.by_path[(base + j) % requests.len()].push(latency);
                    stats.body_bytes += body_len as u64;
                    if status != 200 {
                        stats.errors += 1;
                    }
                }
                Err(e) => {
                    stats.errors += 1;
                    return Err(format!("response failed: {e}"));
                }
            }
        }
    }
    Ok(stats)
}

/// Runs the load described by `opts` against `addr` and aggregates the
/// result. Fails if any connection cannot complete its run.
pub fn run(addr: SocketAddr, opts: &LoadOptions) -> Result<LoadStats, String> {
    if opts.paths.is_empty() {
        return Err("no request paths configured".to_string());
    }
    if opts.conns == 0 || opts.pipeline == 0 {
        return Err("conns and pipeline must both be positive".to_string());
    }
    let started = Instant::now();
    let workers: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.conns)
            .map(|i| scope.spawn(move || worker(addr, opts, i)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let duration = started.elapsed();

    let mut latencies = Vec::new();
    let mut by_path: Vec<Vec<u64>> = vec![Vec::new(); opts.paths.len()];
    let mut errors = 0u64;
    let mut body_bytes = 0u64;
    for w in workers {
        let w = w?;
        latencies.extend(w.latencies_us);
        for (merged, local) in by_path.iter_mut().zip(w.by_path) {
            merged.extend(local);
        }
        errors += w.errors;
        body_bytes += w.body_bytes;
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let endpoints = opts
        .paths
        .iter()
        .zip(by_path.iter_mut())
        .filter(|(_, lats)| !lats.is_empty())
        .map(|(path, lats)| {
            lats.sort_unstable();
            EndpointStats {
                path: path.clone(),
                requests: lats.len() as u64,
                p50_us: percentile(lats, 0.50),
                p99_us: percentile(lats, 0.99),
                p999_us: percentile(lats, 0.999),
            }
        })
        .collect();
    Ok(LoadStats {
        requests,
        errors,
        duration,
        throughput_rps: requests as f64 / duration.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        body_bytes,
        endpoints,
    })
}

/// Exact quantile over sorted latencies (0 for an empty set).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }
}

/// The standard mixed-endpoint path set for a server with the given
/// network names: every static endpoint plus both per-network routes.
pub fn mixed_paths(networks: &[String]) -> Vec<String> {
    let mut paths = vec![
        "/healthz".to_string(),
        "/networks".to_string(),
        "/instances".to_string(),
        "/pathways".to_string(),
        "/diag".to_string(),
    ];
    for name in networks {
        paths.push(format!("/networks/{name}"));
        paths.push(format!("/networks/{name}/processes"));
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_reader_splits_pipelined_responses() {
        let head = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\n";
        assert_eq!(find_terminator(head), Some(head.len()));
        assert_eq!(parse_status(head).unwrap(), 200);
        assert_eq!(parse_content_length(head).unwrap(), 5);
        assert!(parse_content_length(b"HTTP/1.1 200 OK\r\n\r\n").is_err());
        assert_eq!(
            parse_status(b"HTTP/1.1 304 Not Modified\r\n\r\n").unwrap(),
            304
        );
    }

    #[test]
    fn mixed_paths_cover_every_endpoint() {
        let paths = mixed_paths(&["net1".to_string()]);
        assert!(paths.contains(&"/diag".to_string()));
        assert!(paths.contains(&"/networks/net1/processes".to_string()));
        assert_eq!(paths.len(), 7);
    }
}
