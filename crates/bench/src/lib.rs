//! Shared harness code for the `repro` binary and the criterion benches:
//! study generation/analysis helpers and the alternative implementations
//! used by the DESIGN.md ablations (quadratic link join, BFS instance
//! closure).

#![forbid(unsafe_code)]

pub mod loadgen;
pub mod timing;

use netgen::{study_roster, StudyScale};
use routing_design::report::StudyNetwork;
use routing_design::NetworkAnalysis;

/// Generates and fully analyzes the whole study at the given scale.
///
/// The per-network generate + analyze pipeline fans out across
/// `RD_THREADS` workers (see [`rd_par::thread_count`]); each network owns
/// its generator seed, so the results are identical at any thread count
/// and come back in roster order.
pub fn analyzed_study(scale: StudyScale) -> Vec<StudyNetwork> {
    let roster = study_roster(scale);
    rd_par::par_map(&roster, |_, spec| {
        let generated = netgen::study::generate_network(spec, scale);
        StudyNetwork {
            name: spec.name.clone(),
            analysis: NetworkAnalysis::from_bytes_list(
                generated.texts.into_iter().map(|(n, t)| (n, t.into_bytes())).collect(),
            ),
        }
    })
}

/// One network excluded from a chaos study run because its quarantined
/// fraction exceeded the error budget.
pub struct StudyDrop {
    /// Roster name of the dropped network.
    pub name: String,
    /// Config files the network was generated with.
    pub total_files: usize,
    /// How many of those files were quarantined after mutation.
    pub quarantined: usize,
}

/// Like [`analyzed_study`], but damages each network's corpus with one
/// seeded `rd-chaos` mutation before analysis — the degraded-pipeline
/// benchmark and test path (`repro --chaos <seed>`).
///
/// The mutation seed is derived from `(seed, roster index)`, never from
/// worker identity, so the damaged corpus — and every diagnostic it
/// produces — is byte-identical at any `RD_THREADS`. Returns the
/// surviving networks (possibly degraded, coverage intact) and the
/// networks dropped by [`nettopo::error_budget`].
pub fn chaos_study(scale: StudyScale, seed: u64) -> (Vec<StudyNetwork>, Vec<StudyDrop>) {
    let roster = study_roster(scale);
    let budget = nettopo::error_budget();
    let analyzed = rd_par::par_map(&roster, |index, spec| {
        let generated = netgen::study::generate_network(spec, scale);
        let mut files: Vec<(String, Vec<u8>)> =
            generated.texts.into_iter().map(|(n, t)| (n, t.into_bytes())).collect();
        let mut rng = rd_rng::StdRng::seed_from_u64(
            seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mutator = rd_chaos::CONFIG_MUTATORS[index % rd_chaos::CONFIG_MUTATORS.len()];
        if !files.is_empty() {
            let victim = rng.gen_range(0..files.len());
            match rd_chaos::mutate_config(&mut rng, mutator, &files[victim].1) {
                Some(bytes) => files[victim].1 = bytes,
                None => {
                    files.remove(victim);
                }
            }
        }
        StudyNetwork {
            name: spec.name.clone(),
            analysis: NetworkAnalysis::from_bytes_list(files),
        }
    });
    let mut kept = Vec::new();
    let mut dropped = Vec::new();
    for sn in analyzed {
        let coverage = &sn.analysis.network.coverage;
        if coverage.over_budget(budget) {
            dropped.push(StudyDrop {
                name: sn.name.clone(),
                total_files: coverage.total_files,
                quarantined: coverage.quarantined.len(),
            });
        } else {
            kept.push(sn);
        }
    }
    (kept, dropped)
}

/// Generates the raw config texts of one roster entry by name.
pub fn generate_named(name: &str, scale: StudyScale) -> Vec<(String, String)> {
    let roster = study_roster(scale);
    let spec = roster
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no roster entry named {name}"));
    netgen::study::generate_network(spec, scale).texts
}

/// Ablation: quadratic link inference — match every interface pair
/// instead of hash-joining by subnet. Same output as
/// `nettopo::LinkMap::build`, asymptotically worse.
pub fn quadratic_link_join(net: &nettopo::Network) -> usize {
    let mut ifaces: Vec<(usize, netaddr::Prefix)> = Vec::new();
    for (rid, router) in net.iter() {
        for iface in &router.config.interfaces {
            if iface.shutdown {
                continue;
            }
            for subnet in iface.subnets() {
                if subnet.len() < 32 {
                    ifaces.push((rid.0, subnet));
                }
            }
        }
    }
    let mut links = 0usize;
    for i in 0..ifaces.len() {
        let a = ifaces[i].1;
        // Count each shared subnet once, at its first occurrence.
        if ifaces[..i].iter().any(|(_, b)| *b == a) {
            continue;
        }
        if ifaces[i + 1..].iter().any(|(_, b)| *b == a) {
            links += 1;
        }
    }
    links
}

/// Ablation: BFS-closure instance computation instead of union-find.
/// Returns the number of instances (same as `Instances::compute`).
pub fn bfs_instance_closure(
    procs: &routing_design::Processes,
    adj: &routing_design::Adjacencies,
) -> usize {
    use std::collections::{BTreeMap, BTreeSet, VecDeque};
    // Build adjacency lists over process indices.
    let mut edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut add = |a: routing_design::ProcKey, b: routing_design::ProcKey| {
        let (Some(i), Some(j)) = (procs.position(a), procs.position(b)) else { return };
        edges.entry(i).or_default().push(j);
        edges.entry(j).or_default().push(i);
    };
    for a in &adj.igp {
        add(a.a, a.b);
    }
    for s in &adj.bgp {
        if s.scope == routing_design::SessionScope::Ibgp {
            if let Some(peer) = s.peer {
                add(s.local, peer);
            }
        }
    }
    // Flood fill.
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut instances = 0usize;
    for start in 0..procs.len() {
        if seen.contains(&start) {
            continue;
        }
        instances += 1;
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(v) = queue.pop_front() {
            for &w in edges.get(&v).into_iter().flatten() {
                if seen.insert(w) {
                    queue.push_back(w);
                }
            }
        }
    }
    instances
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_agree_with_primary_implementations() {
        let texts = generate_named("net6", StudyScale::Small);
        let net = nettopo::Network::from_texts(texts).unwrap();
        let links = nettopo::LinkMap::build(&net);
        let shared = links.links.values().filter(|l| l.endpoints.len() >= 2).count();
        assert_eq!(quadratic_link_join(&net), shared);

        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_design::Processes::extract(&net);
        let adj = routing_design::Adjacencies::build(&net, &links, &procs, &external);
        let instances = routing_design::Instances::compute(&procs, &adj);
        assert_eq!(bfs_instance_closure(&procs, &adj), instances.len());
    }

    #[test]
    fn generate_named_finds_case_studies() {
        assert!(!generate_named("net5", StudyScale::Small).is_empty());
        assert!(!generate_named("net15", StudyScale::Small).is_empty());
    }
}
