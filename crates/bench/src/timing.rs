//! The self-contained bench mode behind `repro --bench`: times the
//! generate + analyze pipeline per network and per stage, and renders the
//! result as `BENCH_repro.json` — hand-rolled JSON, so the harness works
//! with no external crates and no network access (criterion stays an
//! opt-in feature; see `criterion-benches` in this crate's manifest).

use std::time::{Duration, Instant};

use netgen::{study_roster, StudyScale};
use rd_par::StageTimings;
use routing_design::NetworkAnalysis;

/// Timing record of one network's generate + analyze run.
pub struct NetworkBench {
    /// Roster name (`net1`...).
    pub name: String,
    /// Router count of the generated corpus.
    pub routers: usize,
    /// Wall-clock of corpus generation (netgen).
    pub generate: Duration,
    /// Per-stage wall-clock of the analysis (includes `"parse"`).
    pub stages: StageTimings,
}

impl NetworkBench {
    /// Generation plus every analysis stage.
    pub fn total(&self) -> Duration {
        self.generate + self.stages.total()
    }
}

/// Timing record of one whole-study run at one scale.
pub struct ScaleBench {
    /// `"small"` or `"full"`.
    pub scale: &'static str,
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// End-to-end wall-clock of the parallel run.
    pub wall: Duration,
    /// End-to-end wall-clock of the same work on one thread, measured
    /// only when `threads > 1` (it is the same run otherwise).
    pub sequential_wall: Option<Duration>,
    /// Per-network records from the parallel run, in roster order.
    pub networks: Vec<NetworkBench>,
}

impl ScaleBench {
    /// Stage durations summed across every network.
    pub fn stage_totals(&self) -> StageTimings {
        let mut totals = StageTimings::new();
        totals.push("generate", self.networks.iter().map(|n| n.generate).sum());
        for n in &self.networks {
            totals.merge(&n.stages);
        }
        totals
    }

    /// `sequential_wall / wall`, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.sequential_wall.map(|s| s.as_secs_f64() / self.wall.as_secs_f64())
    }
}

/// Runs the whole study at `scale` on `threads` workers, timing each
/// network's generation and each analysis stage. Per-network work runs
/// through the same `rd_par` fan-out as `analyzed_study`.
pub fn bench_study(scale: StudyScale, threads: usize) -> Vec<NetworkBench> {
    let roster = study_roster(scale);
    rd_par::par_map_threads(threads, &roster, |_, spec| {
        let started = Instant::now();
        let generated = netgen::study::generate_network(spec, scale);
        let generate = started.elapsed();
        let analysis = NetworkAnalysis::from_texts(generated.texts)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        rd_obs::trace::event(
            "bench.network",
            &[
                ("name", spec.name.as_str().into()),
                ("routers", analysis.network.len().into()),
            ],
        );
        NetworkBench {
            name: spec.name.clone(),
            routers: analysis.network.len(),
            generate,
            stages: analysis.timings,
        }
    })
}

/// Benches one scale end to end: a parallel run on [`rd_par::thread_count`]
/// workers plus, when that is more than one, a single-thread run of the
/// same work for the speedup baseline.
pub fn bench_scale(scale: StudyScale) -> ScaleBench {
    let threads = rd_par::thread_count();
    let started = Instant::now();
    let networks = bench_study(scale, threads);
    let wall = started.elapsed();
    let sequential_wall = (threads > 1).then(|| {
        let started = Instant::now();
        // The inner parse fan-out still sees RD_THREADS; pin it to 1 so
        // the baseline is truly sequential, then restore.
        let saved = std::env::var(rd_par::THREADS_ENV).ok();
        std::env::set_var(rd_par::THREADS_ENV, "1");
        let baseline = bench_study(scale, 1);
        match saved {
            Some(v) => std::env::set_var(rd_par::THREADS_ENV, v),
            None => std::env::remove_var(rd_par::THREADS_ENV),
        }
        drop(baseline);
        started.elapsed()
    });
    ScaleBench {
        scale: match scale {
            StudyScale::Small => "small",
            StudyScale::Full => "full",
        },
        threads,
        wall,
        sequential_wall,
        networks,
    }
}

fn json_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn json_stages(indent: &str, t: &StageTimings) -> String {
    let body: Vec<String> = t
        .stages
        .iter()
        .map(|(name, d)| format!("{indent}  \"{name}\": {}", json_ms(*d)))
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Renders bench results as the `BENCH_repro.json` document. The
/// document additionally carries the `rd-obs` metrics registry as a
/// top-level `"metrics"` object (counters/gauges as numbers, histograms
/// as objects) — additive, so existing consumers of `"scales"` are
/// unaffected.
pub fn render_json(scales: &[ScaleBench]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"repro\",\n  \"unit\": \"ms\",\n");
    out.push_str(&format!(
        "  \"metrics\": {},\n",
        rd_obs::metrics::render_json("  ")
    ));
    out.push_str("  \"scales\": [\n");
    let rendered: Vec<String> = scales
        .iter()
        .map(|s| {
            let mut block = String::from("    {\n");
            block.push_str(&format!("      \"scale\": \"{}\",\n", s.scale));
            block.push_str(&format!("      \"threads\": {},\n", s.threads));
            block.push_str(&format!("      \"wall_ms\": {},\n", json_ms(s.wall)));
            if let Some(seq) = s.sequential_wall {
                block.push_str(&format!("      \"sequential_wall_ms\": {},\n", json_ms(seq)));
                block.push_str(&format!(
                    "      \"speedup\": {:.2},\n",
                    s.speedup().expect("speedup measured")
                ));
            }
            block.push_str(&format!(
                "      \"stage_totals_ms\": {},\n",
                json_stages("      ", &s.stage_totals())
            ));
            let nets: Vec<String> = s
                .networks
                .iter()
                .map(|n| {
                    format!(
                        "        {{\n          \"name\": \"{}\",\n          \"routers\": {},\n          \"total_ms\": {},\n          \"generate_ms\": {},\n          \"stages_ms\": {}\n        }}",
                        n.name,
                        n.routers,
                        json_ms(n.total()),
                        json_ms(n.generate),
                        json_stages("          ", &n.stages)
                    )
                })
                .collect();
            block.push_str(&format!("      \"networks\": [\n{}\n      ]\n", nets.join(",\n")));
            block.push_str("    }");
            block
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_small_scale_records_every_network_and_stage() {
        let networks = bench_study(StudyScale::Small, 1);
        assert_eq!(networks.len(), study_roster(StudyScale::Small).len());
        for n in &networks {
            assert!(n.routers > 0, "{} generated no routers", n.name);
            for stage in
                ["parse", "links", "external", "processes", "adjacencies", "instances"]
            {
                assert!(n.stages.get(stage).is_some(), "{} missing stage {stage}", n.name);
            }
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let scales = vec![ScaleBench {
            scale: "small",
            threads: 2,
            wall: Duration::from_millis(10),
            sequential_wall: Some(Duration::from_millis(18)),
            networks: vec![NetworkBench {
                name: "net1".into(),
                routers: 7,
                generate: Duration::from_millis(1),
                stages: {
                    let mut t = StageTimings::new();
                    t.push("parse", Duration::from_millis(2));
                    t.push("links", Duration::from_millis(3));
                    t
                },
            }],
        }];
        let text = render_json(&scales);
        assert!(text.contains("\"speedup\": 1.80"));
        assert!(text.contains("\"parse\": 2.000"));
        assert!(text.contains("\"routers\": 7"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }
}
