//! The self-contained bench mode behind `repro --bench`: times the
//! generate + analyze pipeline per network and per stage, and renders the
//! result as `BENCH_repro.json` — hand-rolled JSON, so the harness works
//! with no external crates and no network access (criterion stays an
//! opt-in feature; see `criterion-benches` in this crate's manifest).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use netgen::{study_roster, StudyScale};
use rd_par::StageTimings;
use rd_snap::Corpus;
use routing_design::report::StudyNetwork;
use routing_design::NetworkAnalysis;

/// Timing record of one network's generate + analyze run.
pub struct NetworkBench {
    /// Roster name (`net1`...).
    pub name: String,
    /// Router count of the generated corpus.
    pub routers: usize,
    /// Wall-clock of corpus generation (netgen).
    pub generate: Duration,
    /// Per-stage wall-clock of the analysis (includes `"parse"`).
    pub stages: StageTimings,
}

impl NetworkBench {
    /// Generation plus every analysis stage.
    pub fn total(&self) -> Duration {
        self.generate + self.stages.total()
    }
}

/// Timing record of one whole-study run at one scale.
pub struct ScaleBench {
    /// `"small"` or `"full"`.
    pub scale: &'static str,
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// End-to-end wall-clock of the parallel run.
    pub wall: Duration,
    /// End-to-end wall-clock of the same work on one thread, measured
    /// only when `threads > 1` (it is the same run otherwise).
    pub sequential_wall: Option<Duration>,
    /// Per-network records from the parallel run, in roster order.
    pub networks: Vec<NetworkBench>,
}

impl ScaleBench {
    /// Stage durations summed across every network.
    pub fn stage_totals(&self) -> StageTimings {
        let mut totals = StageTimings::new();
        totals.push("generate", self.networks.iter().map(|n| n.generate).sum());
        for n in &self.networks {
            totals.merge(&n.stages);
        }
        totals
    }

    /// `sequential_wall / wall`, when both were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.sequential_wall.map(|s| s.as_secs_f64() / self.wall.as_secs_f64())
    }
}

/// Runs the whole study at `scale` on `threads` workers, timing each
/// network's generation and each analysis stage. Per-network work runs
/// through the same `rd_par` fan-out as `analyzed_study`.
pub fn bench_study(scale: StudyScale, threads: usize) -> Vec<NetworkBench> {
    let roster = study_roster(scale);
    rd_par::par_map_threads(threads, &roster, |_, spec| {
        let started = Instant::now();
        let generated = netgen::study::generate_network(spec, scale);
        let generate = started.elapsed();
        let analysis = NetworkAnalysis::from_texts(generated.texts)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        rd_obs::trace::event(
            "bench.network",
            &[
                ("name", spec.name.as_str().into()),
                ("routers", analysis.network.len().into()),
            ],
        );
        NetworkBench {
            name: spec.name.clone(),
            routers: analysis.network.len(),
            generate,
            stages: analysis.timings,
        }
    })
}

/// Benches one scale end to end: a parallel run on [`rd_par::thread_count`]
/// workers plus, when that is more than one, a single-thread run of the
/// same work for the speedup baseline.
pub fn bench_scale(scale: StudyScale) -> ScaleBench {
    let threads = rd_par::thread_count();
    let started = Instant::now();
    let networks = bench_study(scale, threads);
    let wall = started.elapsed();
    let sequential_wall = (threads > 1).then(|| {
        let started = Instant::now();
        // The inner parse fan-out still sees RD_THREADS; pin it to 1 so
        // the baseline is truly sequential, then restore.
        let saved = std::env::var(rd_par::THREADS_ENV).ok();
        std::env::set_var(rd_par::THREADS_ENV, "1");
        let baseline = bench_study(scale, 1);
        match saved {
            Some(v) => std::env::set_var(rd_par::THREADS_ENV, v),
            None => std::env::remove_var(rd_par::THREADS_ENV),
        }
        drop(baseline);
        started.elapsed()
    });
    ScaleBench {
        scale: match scale {
            StudyScale::Small => "small",
            StudyScale::Full => "full",
        },
        threads,
        wall,
        sequential_wall,
        networks,
    }
}

/// Timing record of one isolated `ExternalAnalysis::build` run — the
/// address-analytics stage the `netaddr` prefix index layer serves.
pub struct ExternalBench {
    /// Roster name of the measured network.
    pub network: String,
    /// Routers in the generated corpus.
    pub routers: usize,
    /// Interfaces the build classified.
    pub interfaces: usize,
    /// Wall-clock of one `ExternalAnalysis::build`.
    pub build: Duration,
}

/// Times `ExternalAnalysis::build` in isolation on the largest roster
/// network (`net18`, 1,750 routers at full scale; the last roster entry
/// should that name ever disappear). Generation, parse, and link
/// inference all run outside the timed region, so the record tracks just
/// the external-classification stage across benchmark history.
pub fn bench_external(scale: StudyScale) -> ExternalBench {
    let roster = study_roster(scale);
    let spec = roster
        .iter()
        .find(|s| s.name == "net18")
        .or_else(|| roster.last())
        .expect("non-empty study roster");
    let generated = netgen::study::generate_network(spec, scale);
    let net = nettopo::Network::from_texts(generated.texts)
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    let links = nettopo::LinkMap::build(&net);
    let started = Instant::now();
    let analysis = nettopo::ExternalAnalysis::build(&net, &links);
    let build = started.elapsed();
    ExternalBench {
        network: spec.name.clone(),
        routers: net.len(),
        interfaces: analysis.classes.len(),
        build,
    }
}

/// Timing record of the snapshot (`rd-snap`) round trip over an analyzed
/// study: encode-to-bytes vs decode-from-bytes vs the analysis wall that
/// produced the corpus in the first place.
pub struct SnapBench {
    /// Networks in the snapshotted corpus.
    pub networks: usize,
    /// Encoded container size.
    pub bytes: usize,
    /// Wall-clock of encoding the whole corpus (`snap:write`).
    pub write: Duration,
    /// Wall-clock of decoding it back (`snap:load`).
    pub load: Duration,
    /// Summed per-stage analysis wall of the same corpus — what a load
    /// replaces, measured on the same (sequential) terms.
    pub analyze: Duration,
}

impl SnapBench {
    /// How many times faster loading the snapshot is than re-analyzing.
    pub fn speedup(&self) -> f64 {
        self.analyze.as_secs_f64() / self.load.as_secs_f64().max(1e-9)
    }
}

/// Snapshots an analyzed study in memory, timing the encode and decode
/// halves. Returns the record plus the decoded corpus (handy for pushing
/// straight into [`bench_serve`]).
///
/// Consumes the analyses so at most one full copy of the study is alive
/// at a time — on memory-tight machines, extra resident copies perturb
/// the very timings being measured.
pub fn bench_snapshot(networks: Vec<StudyNetwork>) -> (SnapBench, Corpus) {
    let count = networks.len();
    let mut analyze = Duration::ZERO;
    let mut snaps = Vec::with_capacity(count);
    for n in networks {
        analyze += n.analysis.timings.total();
        snaps.push(routing_design::snapshot::capture(&n.name, n.analysis));
    }
    let corpus = Corpus::new(snaps);
    let started = Instant::now();
    let bytes = corpus.to_bytes();
    let write = started.elapsed();
    drop(corpus);
    let started = Instant::now();
    let loaded = Corpus::from_bytes(&bytes).expect("snapshot roundtrip");
    let load = started.elapsed();
    (SnapBench { networks: count, bytes: bytes.len(), write, load, analyze }, loaded)
}

/// Builds the snapshot corpus of a study scale without timing anything
/// — for benches that need a served corpus but measure the query
/// server, not snapshot I/O.
pub fn study_corpus(scale: StudyScale) -> Corpus {
    let networks = crate::analyzed_study(scale);
    Corpus::new(
        networks
            .into_iter()
            .map(|n| routing_design::snapshot::capture(&n.name, n.analysis))
            .collect(),
    )
}

/// Borrowing variant of [`bench_snapshot`] for callers that still need
/// the analyses afterwards (`repro --timings`): clones each analysis
/// into its snapshot form first.
pub fn bench_snapshot_ref(networks: &[StudyNetwork]) -> (SnapBench, Corpus) {
    let analyze = networks.iter().map(|n| n.analysis.timings.total()).sum();
    let snaps = networks
        .iter()
        .map(|n| routing_design::snapshot::capture_ref(&n.name, &n.analysis))
        .collect();
    let corpus = Corpus::new(snaps);
    let started = Instant::now();
    let bytes = corpus.to_bytes();
    let write = started.elapsed();
    drop(corpus);
    let started = Instant::now();
    let loaded = Corpus::from_bytes(&bytes).expect("snapshot roundtrip");
    let load = started.elapsed();
    (
        SnapBench { networks: networks.len(), bytes: bytes.len(), write, load, analyze },
        loaded,
    )
}

/// Latency record of a short `rd-serve` request burst.
pub struct ServeBench {
    /// Requests measured (after warmup).
    pub requests: usize,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Requests per second over the whole burst.
    pub throughput_rps: f64,
}

/// One HTTP/1.1 GET over an existing keep-alive connection, framed by
/// `content-length`. Returns the body length.
fn keepalive_get(stream: &mut TcpStream, path: &str) -> usize {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n").as_bytes())
        .expect("request written");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("ascii head");
    assert!(head.starts_with("HTTP/1.1 200"), "unexpected status: {head}");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("response body");
    len
}

/// Measures `requests` sequential GETs of `path` over one keep-alive
/// connection to an already-running server.
fn serve_burst(server: &rd_serve::Server, path: &str, requests: usize) -> ServeBench {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    for _ in 0..5 {
        keepalive_get(&mut stream, path);
    }
    let mut latencies = Vec::with_capacity(requests);
    let started = Instant::now();
    for _ in 0..requests {
        let t = Instant::now();
        keepalive_get(&mut stream, path);
        latencies.push(t.elapsed().as_micros() as u64);
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    let pick = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    ServeBench {
        requests,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        throughput_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Serves `corpus` on an ephemeral port and measures `requests` GETs of
/// `/networks/{first}` over one keep-alive connection.
pub fn bench_serve(corpus: Corpus, requests: usize) -> ServeBench {
    let path = match corpus.networks.first() {
        Some(n) => format!("/networks/{}", n.name),
        None => "/networks".to_string(),
    };
    let server = rd_serve::Server::start(corpus, "127.0.0.1:0", 0).expect("bench server");
    let result = serve_burst(&server, &path, requests);
    server.shutdown();
    result
}

/// Result of the pipelined mixed-endpoint load run (`bench_serve` in
/// `BENCH_repro.json`): what the epoll server sustains when clients
/// batch requests instead of strict request/response lockstep.
pub struct ServeLoadBench {
    /// Concurrent keep-alive connections.
    pub conns: usize,
    /// Requests pipelined per write.
    pub pipeline: usize,
    /// Measured window wall-clock.
    pub duration: Duration,
    /// Responses received.
    pub requests: u64,
    /// Non-200 responses plus I/O failures (must be zero).
    pub errors: u64,
    /// `requests / duration`.
    pub throughput_rps: f64,
    /// Median latency, microseconds (batch send → response completion).
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
}

/// Starts one server over `corpus` and measures both serve benchmarks
/// against it: the sequential single-connection burst (the `serve`
/// section, comparable across benchmark history) and the pipelined
/// mixed-endpoint load run (the `bench_serve` section).
pub fn bench_serve_with_load(
    corpus: Corpus,
    requests: usize,
    load: &crate::loadgen::LoadOptions,
) -> (ServeBench, ServeLoadBench) {
    let names: Vec<String> = corpus.networks.iter().map(|n| n.name.clone()).collect();
    let burst_path = match names.first() {
        Some(n) => format!("/networks/{n}"),
        None => "/networks".to_string(),
    };
    let server = rd_serve::Server::start(corpus, "127.0.0.1:0", 0).expect("bench server");
    let burst = serve_burst(&server, &burst_path, requests);
    let opts = crate::loadgen::LoadOptions {
        conns: load.conns,
        pipeline: load.pipeline,
        duration: load.duration,
        max_batches: load.max_batches,
        paths: if load.paths.is_empty() {
            crate::loadgen::mixed_paths(&names)
        } else {
            load.paths.clone()
        },
        connect_retries: load.connect_retries,
    };
    let stats = crate::loadgen::run(server.local_addr(), &opts).expect("load run");
    server.shutdown();
    let load_bench = ServeLoadBench {
        conns: opts.conns,
        pipeline: opts.pipeline,
        duration: stats.duration,
        requests: stats.requests,
        errors: stats.errors,
        throughput_rps: stats.throughput_rps,
        p50_us: stats.p50_us,
        p99_us: stats.p99_us,
        p999_us: stats.p999_us,
    };
    (burst, load_bench)
}

/// Timing record of one reconfiguration-planning scenario (`bench_plan`
/// in `BENCH_repro.json`): the rd-plan diff → DAG → verified-search
/// pipeline run end to end through the real analysis bridge.
pub struct PlanBench {
    /// Scenario label (`"demo"`, `"star6"`).
    pub scenario: &'static str,
    /// Router count of the target corpus.
    pub routers: usize,
    /// Atomic change units between the corpora.
    pub units: usize,
    /// Steps in the safe ordering (equals `units` on success).
    pub steps: usize,
    /// Intermediate corpus states fully re-analyzed by the search.
    pub states_analyzed: usize,
    /// Wall-clock of the fingerprint diff phase.
    pub diff: Duration,
    /// Wall-clock of the dependency-DAG build.
    pub dag: Duration,
    /// Wall-clock of the verified ordering search (dominant phase: it
    /// re-analyzes every intermediate state).
    pub search: Duration,
}

/// Plans the two seeded rd-plan scenarios (the four-router demo whose
/// naive order is unsafe, and a six-spoke hub renumbering) through the
/// full analysis pipeline and records per-phase wall-clock.
pub fn bench_plan() -> Vec<PlanBench> {
    let scenarios: [(&'static str, _); 2] = [
        ("demo", rd_plan::scenario::demo(42)),
        ("star6", rd_plan::scenario::star(6, 7)),
    ];
    scenarios
        .into_iter()
        .map(|(scenario, (current, target))| {
            let routers = target.len();
            let plan = routing_design::plan::plan_corpora(&current, &target)
                .unwrap_or_else(|e| panic!("bench_plan {scenario}: {e}"));
            let phase = |name: &str| {
                plan.timings
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, d)| *d)
                    .unwrap_or_default()
            };
            PlanBench {
                scenario,
                routers,
                units: plan.units.len(),
                steps: plan.order.len(),
                states_analyzed: plan.stats.states_analyzed,
                diff: phase("diff"),
                dag: phase("dag"),
                search: phase("search"),
            }
        })
        .collect()
}

/// Timing record of the incremental re-analysis engine (`bench_incremental`
/// in `BENCH_repro.json`): a cold study snapshot vs delta refreshes after
/// small config changes, with the engine's reuse accounting.
pub struct IncrementalBench {
    /// Networks in the study.
    pub networks: usize,
    /// Wall-clock of the cold run (`snap_dir` + encode), the baseline a
    /// refresh competes against.
    pub cold: Duration,
    /// Wall-clock of one refresh after a single-router change.
    pub one_change: Duration,
    /// Engine accounting for the single-router refresh.
    pub one_stats: routing_design::incremental::RefreshStats,
    /// Wall-clock of one refresh after changes in five networks.
    pub five_change: Duration,
    /// Engine accounting for the five-network refresh.
    pub five_stats: routing_design::incremental::RefreshStats,
}

impl IncrementalBench {
    /// `cold / one_change`: how many times faster a one-router refresh is.
    pub fn one_change_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.one_change.as_secs_f64().max(1e-9)
    }
}

/// Benches the delta engine over the generated study at `scale`: writes
/// the corpus to a scratch directory, times a cold `snap_dir` run, then
/// times delta refreshes after a one-router change and after changes in
/// five networks. The scratch directory is removed afterwards.
pub fn bench_incremental(scale: StudyScale) -> IncrementalBench {
    let dir = std::env::temp_dir().join(format!("rd_bench_incr_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let roster = study_roster(scale);
    for spec in &roster {
        let sub = dir.join(&spec.name);
        std::fs::create_dir_all(&sub).expect("scratch network dir");
        let generated = netgen::study::generate_network(spec, scale);
        for (name, text) in &generated.texts {
            std::fs::write(sub.join(name), text).expect("scratch config");
        }
    }

    let started = Instant::now();
    let outcome = routing_design::snapshot::snap_dir(&dir).expect("cold study run");
    let cold_bytes = outcome.corpus.to_bytes();
    let cold = started.elapsed();
    drop(cold_bytes);

    let mut engine = routing_design::incremental::DeltaEngine::new(&dir);
    engine.refresh().expect("warm-up refresh");

    // One router in one network grows a loopback.
    let touch = |net: &str| {
        let sub = dir.join(net);
        let mut files: Vec<_> = std::fs::read_dir(&sub)
            .expect("scratch network readable")
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        let victim = files.first().expect("network has files");
        let mut text = std::fs::read_to_string(victim).expect("victim readable");
        text.push_str("interface Loopback99\n ip address 10.99.0.1 255.255.255.255\n");
        std::fs::write(victim, text).expect("victim rewritten");
    };
    // Best-of-three shaves scheduler noise, same as the parallel-speedup
    // bench: each round appends another line to the same router and
    // refreshes, so every round recomputes exactly one network.
    let mut one_change = Duration::MAX;
    let mut one_stats = routing_design::incremental::RefreshStats::default();
    for _ in 0..3 {
        touch(&roster[0].name);
        let started = Instant::now();
        let one = engine.refresh().expect("one-change refresh");
        one_change = one_change.min(started.elapsed());
        one_stats = one.stats;
    }

    for spec in roster.iter().take(5) {
        touch(&spec.name);
    }
    let started = Instant::now();
    let five = engine.refresh().expect("five-change refresh");
    let five_change = started.elapsed();

    let _ = std::fs::remove_dir_all(&dir);
    IncrementalBench {
        networks: roster.len(),
        cold,
        one_change,
        one_stats,
        five_change,
        five_stats: five.stats,
    }
}

fn json_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn json_stages(indent: &str, t: &StageTimings) -> String {
    let body: Vec<String> = t
        .stages
        .iter()
        .map(|(name, d)| format!("{indent}  \"{name}\": {}", json_ms(*d)))
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Renders bench results as the `BENCH_repro.json` document. The
/// document additionally carries the `rd-obs` metrics registry as a
/// top-level `"metrics"` object (counters/gauges as numbers, histograms
/// as objects), and — when measured — `"snap"` (snapshot size and
/// write/load timings vs re-analysis), `"serve"` (sequential request
/// latency percentiles), `"bench_serve"` (the pipelined mixed-endpoint
/// load run: throughput plus p50/p99/p999), `"bench_external"` (the
/// isolated external-classification stage), `"bench_plan"` (the
/// reconfiguration-planning scenarios), and `"bench_incremental"` (cold
/// study wall vs delta refreshes with reuse accounting) objects. All
/// additive, so existing consumers of `"scales"` are unaffected.
pub fn render_json(
    scales: &[ScaleBench],
    snap: Option<&SnapBench>,
    serve: Option<&ServeBench>,
    serve_load: Option<&ServeLoadBench>,
    external: Option<&ExternalBench>,
    plan: Option<&[PlanBench]>,
    incremental: Option<&IncrementalBench>,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"repro\",\n  \"unit\": \"ms\",\n");
    out.push_str(&format!(
        "  \"metrics\": {},\n",
        rd_obs::metrics::render_json("  ")
    ));
    if let Some(s) = snap {
        out.push_str(&format!(
            "  \"snap\": {{\n    \"networks\": {},\n    \"bytes\": {},\n    \
             \"write_ms\": {},\n    \"load_ms\": {},\n    \"analyze_ms\": {},\n    \
             \"load_speedup\": {:.1}\n  }},\n",
            s.networks,
            s.bytes,
            json_ms(s.write),
            json_ms(s.load),
            json_ms(s.analyze),
            s.speedup(),
        ));
    }
    if let Some(s) = serve {
        out.push_str(&format!(
            "  \"serve\": {{\n    \"requests\": {},\n    \"p50_us\": {},\n    \
             \"p99_us\": {},\n    \"throughput_rps\": {:.0}\n  }},\n",
            s.requests, s.p50_us, s.p99_us, s.throughput_rps,
        ));
    }
    if let Some(l) = serve_load {
        out.push_str(&format!(
            "  \"bench_serve\": {{\n    \"conns\": {},\n    \"pipeline\": {},\n    \
             \"duration_ms\": {},\n    \"requests\": {},\n    \"errors\": {},\n    \
             \"throughput_rps\": {:.0},\n    \"p50_us\": {},\n    \"p99_us\": {},\n    \
             \"p999_us\": {}\n  }},\n",
            l.conns,
            l.pipeline,
            json_ms(l.duration),
            l.requests,
            l.errors,
            l.throughput_rps,
            l.p50_us,
            l.p99_us,
            l.p999_us,
        ));
    }
    if let Some(e) = external {
        out.push_str(&format!(
            "  \"bench_external\": {{\n    \"network\": \"{}\",\n    \
             \"routers\": {},\n    \"interfaces\": {},\n    \"build_ms\": {}\n  }},\n",
            e.network,
            e.routers,
            e.interfaces,
            json_ms(e.build),
        ));
    }
    if let Some(plans) = plan {
        let blocks: Vec<String> = plans
            .iter()
            .map(|p| {
                format!(
                    "    {{\n      \"scenario\": \"{}\",\n      \"routers\": {},\n      \
                     \"units\": {},\n      \"steps\": {},\n      \"states_analyzed\": {},\n      \
                     \"diff_ms\": {},\n      \"dag_ms\": {},\n      \"search_ms\": {}\n    }}",
                    p.scenario,
                    p.routers,
                    p.units,
                    p.steps,
                    p.states_analyzed,
                    json_ms(p.diff),
                    json_ms(p.dag),
                    json_ms(p.search),
                )
            })
            .collect();
        out.push_str(&format!("  \"bench_plan\": [\n{}\n  ],\n", blocks.join(",\n")));
    }
    if let Some(i) = incremental {
        out.push_str(&format!(
            "  \"bench_incremental\": {{\n    \"networks\": {},\n    \"cold_ms\": {},\n    \
             \"one_change_ms\": {},\n    \"one_change_reused\": {},\n    \
             \"one_change_recomputed\": {},\n    \"one_change_files_reparsed\": {},\n    \
             \"one_change_speedup\": {:.1},\n    \"five_change_ms\": {},\n    \
             \"five_change_reused\": {},\n    \"five_change_recomputed\": {},\n    \
             \"five_change_files_reparsed\": {}\n  }},\n",
            i.networks,
            json_ms(i.cold),
            json_ms(i.one_change),
            i.one_stats.reused,
            i.one_stats.recomputed,
            i.one_stats.files_reparsed,
            i.one_change_speedup(),
            json_ms(i.five_change),
            i.five_stats.reused,
            i.five_stats.recomputed,
            i.five_stats.files_reparsed,
        ));
    }
    out.push_str("  \"scales\": [\n");
    let rendered: Vec<String> = scales
        .iter()
        .map(|s| {
            let mut block = String::from("    {\n");
            block.push_str(&format!("      \"scale\": \"{}\",\n", s.scale));
            block.push_str(&format!("      \"threads\": {},\n", s.threads));
            block.push_str(&format!("      \"wall_ms\": {},\n", json_ms(s.wall)));
            if let Some(seq) = s.sequential_wall {
                block.push_str(&format!("      \"sequential_wall_ms\": {},\n", json_ms(seq)));
                block.push_str(&format!(
                    "      \"speedup\": {:.2},\n",
                    s.speedup().expect("speedup measured")
                ));
            }
            block.push_str(&format!(
                "      \"stage_totals_ms\": {},\n",
                json_stages("      ", &s.stage_totals())
            ));
            let nets: Vec<String> = s
                .networks
                .iter()
                .map(|n| {
                    format!(
                        "        {{\n          \"name\": \"{}\",\n          \"routers\": {},\n          \"total_ms\": {},\n          \"generate_ms\": {},\n          \"stages_ms\": {}\n        }}",
                        n.name,
                        n.routers,
                        json_ms(n.total()),
                        json_ms(n.generate),
                        json_stages("          ", &n.stages)
                    )
                })
                .collect();
            block.push_str(&format!("      \"networks\": [\n{}\n      ]\n", nets.join(",\n")));
            block.push_str("    }");
            block
        })
        .collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_small_scale_records_every_network_and_stage() {
        let networks = bench_study(StudyScale::Small, 1);
        assert_eq!(networks.len(), study_roster(StudyScale::Small).len());
        for n in &networks {
            assert!(n.routers > 0, "{} generated no routers", n.name);
            for stage in
                ["parse", "links", "external", "processes", "adjacencies", "instances"]
            {
                assert!(n.stages.get(stage).is_some(), "{} missing stage {stage}", n.name);
            }
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let scales = vec![ScaleBench {
            scale: "small",
            threads: 2,
            wall: Duration::from_millis(10),
            sequential_wall: Some(Duration::from_millis(18)),
            networks: vec![NetworkBench {
                name: "net1".into(),
                routers: 7,
                generate: Duration::from_millis(1),
                stages: {
                    let mut t = StageTimings::new();
                    t.push("parse", Duration::from_millis(2));
                    t.push("links", Duration::from_millis(3));
                    t
                },
            }],
        }];
        let snap = SnapBench {
            networks: 1,
            bytes: 4096,
            write: Duration::from_millis(1),
            load: Duration::from_millis(2),
            analyze: Duration::from_millis(40),
        };
        let serve = ServeBench {
            requests: 100,
            p50_us: 180,
            p99_us: 950,
            throughput_rps: 5000.0,
        };
        let external = ExternalBench {
            network: "net18".into(),
            routers: 1750,
            interfaces: 7000,
            build: Duration::from_millis(120),
        };
        let serve_load = ServeLoadBench {
            conns: 4,
            pipeline: 64,
            duration: Duration::from_secs(3),
            requests: 360000,
            errors: 0,
            throughput_rps: 120000.0,
            p50_us: 150,
            p99_us: 210,
            p999_us: 400,
        };
        let plans = vec![PlanBench {
            scenario: "demo",
            routers: 4,
            units: 4,
            steps: 4,
            states_analyzed: 9,
            diff: Duration::from_millis(1),
            dag: Duration::from_millis(1),
            search: Duration::from_millis(30),
        }];
        let incremental = IncrementalBench {
            networks: 31,
            cold: Duration::from_millis(3100),
            one_change: Duration::from_millis(100),
            one_stats: routing_design::incremental::RefreshStats {
                networks: 31,
                reused: 30,
                recomputed: 1,
                files_reparsed: 1,
                dropped: 0,
            },
            five_change: Duration::from_millis(500),
            five_stats: routing_design::incremental::RefreshStats {
                networks: 31,
                reused: 26,
                recomputed: 5,
                files_reparsed: 5,
                dropped: 0,
            },
        };
        let text = render_json(
            &scales,
            Some(&snap),
            Some(&serve),
            Some(&serve_load),
            Some(&external),
            Some(&plans),
            Some(&incremental),
        );
        assert!(text.contains("\"speedup\": 1.80"));
        assert!(text.contains("\"parse\": 2.000"));
        assert!(text.contains("\"routers\": 7"));
        assert!(text.contains("\"load_speedup\": 20.0"));
        assert!(text.contains("\"p99_us\": 950"));
        assert!(text.contains("\"bench_serve\""));
        assert!(text.contains("\"throughput_rps\": 120000"));
        assert!(text.contains("\"p999_us\": 400"));
        assert!(text.contains("\"bench_external\""));
        assert!(text.contains("\"build_ms\": 120.000"));
        assert!(text.contains("\"bench_plan\""));
        assert!(text.contains("\"states_analyzed\": 9"));
        assert!(text.contains("\"search_ms\": 30.000"));
        assert!(text.contains("\"bench_incremental\""));
        assert!(text.contains("\"one_change_reused\": 30"));
        assert!(text.contains("\"one_change_speedup\": 31.0"));
        assert!(text.contains("\"five_change_recomputed\": 5"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());

        // Without the optional sections the legacy shape is untouched.
        let legacy = render_json(&scales, None, None, None, None, None, None);
        assert!(!legacy.contains("\"snap\""));
        assert!(!legacy.contains("\"serve\""));
        assert!(!legacy.contains("\"bench_serve\""));
        assert!(!legacy.contains("\"bench_external\""));
        assert!(!legacy.contains("\"bench_plan\""));
        assert!(!legacy.contains("\"bench_incremental\""));
    }

    #[test]
    fn external_bench_isolates_the_largest_network() {
        let e = bench_external(StudyScale::Small);
        assert_eq!(e.network, "net18");
        assert!(e.routers > 0, "no routers generated");
        assert!(e.interfaces > 0, "no interfaces classified");
    }

    #[test]
    fn snapshot_bench_roundtrips_and_beats_reanalysis_floor() {
        let networks = rd_bench_study_subset();
        let count = networks.len();
        let (snap, corpus) = bench_snapshot_ref(&networks);
        assert_eq!(snap.networks, count);
        assert_eq!(corpus.networks.len(), count);
        assert!(snap.bytes > 0);
        // No wall-clock assertion beyond sanity: timings are environment
        // dependent, the ≥10x claim is checked by the verify harness.
        assert!(snap.speedup() > 0.0);
    }

    #[test]
    fn serve_bench_measures_latency_percentiles() {
        let networks = rd_bench_study_subset();
        let (_, corpus) = bench_snapshot(networks);
        let result = bench_serve(corpus, 20);
        assert_eq!(result.requests, 20);
        assert!(result.p50_us <= result.p99_us);
        assert!(result.throughput_rps > 0.0);
    }

    #[test]
    fn serve_load_bench_runs_mixed_pipelined_traffic() {
        let networks = rd_bench_study_subset();
        let (_, corpus) = bench_snapshot(networks);
        let load = crate::loadgen::LoadOptions {
            conns: 2,
            pipeline: 8,
            duration: Duration::from_millis(300),
            max_batches: None,
            paths: Vec::new(),
            connect_retries: 3,
        };
        let (burst, stats) = bench_serve_with_load(corpus, 20, &load);
        assert_eq!(burst.requests, 20);
        assert_eq!(stats.errors, 0, "load run saw errors");
        assert!(stats.requests >= stats.conns as u64 * stats.pipeline as u64);
        assert!(stats.p50_us <= stats.p99_us && stats.p99_us <= stats.p999_us);
        assert!(stats.throughput_rps > 0.0);
    }

    #[test]
    fn incremental_bench_reuses_unchanged_networks() {
        let bench = bench_incremental(StudyScale::Small);
        assert_eq!(bench.networks, study_roster(StudyScale::Small).len());
        assert_eq!(bench.one_stats.recomputed, 1, "one changed network recomputed");
        assert_eq!(bench.one_stats.reused, bench.networks - 1);
        assert_eq!(bench.one_stats.files_reparsed, 1, "only the changed file reparses");
        assert_eq!(bench.five_stats.recomputed, 5);
        assert_eq!(bench.five_stats.reused, bench.networks - 5);
        assert_eq!(bench.five_stats.files_reparsed, 5);
    }

    /// Two small study networks analyzed for the snapshot/serve benches.
    fn rd_bench_study_subset() -> Vec<StudyNetwork> {
        study_roster(StudyScale::Small)
            .into_iter()
            .filter(|spec| spec.name == "net1" || spec.name == "net2")
            .map(|spec| {
                let generated = netgen::study::generate_network(&spec, StudyScale::Small);
                let analysis =
                    NetworkAnalysis::from_texts(generated.texts).expect("subset analyzes");
                StudyNetwork { name: spec.name.clone(), analysis }
            })
            .collect()
    }
}
