//! The table/figure regeneration harness.
//!
//! For every table and figure in the paper's evaluation, prints the
//! paper's published value next to the value measured on the regenerated
//! corpus. Absolute counts depend on the authors' private population; the
//! claims to check are the *shapes* (who dominates, ratios, crossovers).
//!
//! ```sh
//! cargo run --release -p rd-bench --bin repro             # full scale, all targets
//! cargo run -p rd-bench --bin repro -- --small table1     # one target, ~10% scale
//! cargo run --release -p rd-bench --bin repro -- --bench  # write BENCH_repro.json
//! ```
//!
//! Targets: `all` (default), `table1`, `table3`, `fig4`, `fig8`, `fig11`,
//! `section7`, `net5`, `net15`, `diag` (per-network diagnostic totals
//! from the `rd-obs` channel; not part of `all`).
//!
//! Flags: `--small` runs the ~10%-scale corpus; `--timings` prints
//! aggregate per-stage wall-clock times to stderr, followed by one
//! `analyze:netNN` row per network; `--metrics` dumps the `rd-obs`
//! metrics registry to stderr; `--trace <path>` (or `--trace=<path>`,
//! `--trace -` for stderr) writes the structured JSONL event stream
//! there — without it the `RD_TRACE` environment variable picks the
//! sink; `--profile <path>` (or `--profile=<path>`) enables the rd-obs
//! span profiler and writes collapsed-stack output (`stack;sub count_us`
//! lines, flamegraph-ready) there on exit — set `RD_PROF_ZERO=1` to zero
//! the counts for byte-stable diffing across thread counts; `--bench`
//! skips the tables and instead times the generate +
//! analyze pipeline per network and per stage — at both scales, or only
//! the small one under `--small` — writing `BENCH_repro.json` (including
//! a `metrics` section) to the current directory; `--chaos <seed>` (or
//! `--chaos=<seed>`) damages each network's corpus with one seeded
//! `rd-chaos` mutation before analysis, prints the per-network coverage
//! table, and exits 1 if any network was dropped by the error budget
//! (`RD_ERROR_BUDGET`, default 25% of files quarantined). Worker count
//! for all of these comes from `RD_THREADS` (default: all cores).

use netgen::{repository_sizes, StudyScale};
use rd_bench::analyzed_study;
use rd_bench::timing::{bench_scale, render_json};
use routing_design::report::{render_fig4, render_table3, StudyNetwork, StudyReport};
use routing_design::{DesignClass, Prefix, StageTimings};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("repro {}", env!("CARGO_PKG_VERSION"));
        return;
    }
    let mut trace: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            if i + 1 >= args.len() {
                eprintln!("repro: --trace needs a path (or '-')");
                std::process::exit(2);
            }
            trace = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(path) = args[i].strip_prefix("--trace=") {
            trace = Some(path.to_string());
            args.remove(i);
        } else if args[i] == "--profile" {
            if i + 1 >= args.len() {
                eprintln!("repro: --profile needs a path");
                std::process::exit(2);
            }
            profile = Some(args.remove(i + 1));
            args.remove(i);
        } else if let Some(path) = args[i].strip_prefix("--profile=") {
            profile = Some(path.to_string());
            args.remove(i);
        } else if args[i] == "--chaos" {
            if i + 1 >= args.len() || args[i + 1].parse::<u64>().is_err() {
                eprintln!("repro: --chaos needs a numeric seed");
                std::process::exit(2);
            }
            chaos_seed = args.remove(i + 1).parse::<u64>().ok();
            args.remove(i);
        } else if let Some(seed) = args[i].strip_prefix("--chaos=") {
            match seed.parse::<u64>() {
                Ok(s) => chaos_seed = Some(s),
                Err(_) => {
                    eprintln!("repro: --chaos needs a numeric seed");
                    std::process::exit(2);
                }
            }
            args.remove(i);
        } else {
            i += 1;
        }
    }
    if let Some(bad) = args.iter().find(|a| {
        a.starts_with("--")
            && !matches!(a.as_str(), "--small" | "--bench" | "--timings" | "--metrics")
    }) {
        eprintln!("repro: unknown flag {bad} (flags: --small --bench --timings --metrics --trace <path> --profile <path> --chaos <seed> --version)");
        std::process::exit(2);
    }
    let sink_result = match &trace {
        Some(path) if path == "-" || path == "stderr" => {
            rd_obs::trace::set_stderr_sink();
            Ok(())
        }
        Some(path) => rd_obs::trace::set_file_sink(path),
        None => rd_obs::trace::init_from_env(),
    };
    if let Err(e) = sink_result {
        eprintln!("repro: cannot open trace sink: {e}");
        std::process::exit(2);
    }
    if profile.is_some() {
        rd_obs::profile::enable();
    }
    let small = args.iter().any(|a| a == "--small");
    let show_metrics = args.iter().any(|a| a == "--metrics");
    let scale = if small { StudyScale::Small } else { StudyScale::Full };
    if args.iter().any(|a| a == "--bench") {
        bench(small);
        finish(show_metrics, &profile);
        return;
    }
    let timings = args.iter().any(|a| a == "--timings");
    let targets: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    const KNOWN: &[&str] = &[
        "all", "table1", "table3", "fig4", "fig8", "fig11", "section7", "net5", "net15",
        "diag",
    ];
    if let Some(bad) = targets.iter().find(|t| !KNOWN.contains(t)) {
        eprintln!("repro: unknown target {bad} (targets: {})", KNOWN.join(" "));
        std::process::exit(2);
    }
    let want = |t: &str| targets.is_empty() || targets.contains(&"all") || targets.contains(&t);

    eprintln!(
        "generating + analyzing the 31-network study at {} scale on {} thread(s)...",
        if small { "small" } else { "full (paper)" },
        rd_par::thread_count(),
    );
    let (networks, dropped) = match chaos_seed {
        Some(seed) => {
            eprintln!("injecting one seeded rd-chaos mutation per network (seed {seed})...");
            rd_bench::chaos_study(scale, seed)
        }
        None => (analyzed_study(scale), Vec::new()),
    };
    if timings {
        let mut totals = StageTimings::new();
        for n in &networks {
            totals.merge(&n.analysis.timings);
        }
        // The rd-snap round trip rides along so a slow snapshot path is
        // as visible as a slow pipeline stage.
        let (snap, _) = rd_bench::timing::bench_snapshot_ref(&networks);
        totals.push("snap:write", snap.write);
        totals.push("snap:load", snap.load);
        // Per-network rows ride along under dynamic Cow labels.
        for n in &networks {
            totals.push(format!("analyze:{}", n.name), n.analysis.timings.total());
        }
        eprintln!("aggregate stage timings across {} networks:", networks.len());
        eprint!("{totals}");
    }
    if chaos_seed.is_some() || !dropped.is_empty() {
        coverage_table(&networks, &dropped);
    }
    if targets.contains(&"diag") {
        diag(&networks);
        if targets.len() == 1 {
            finish_and_exit(show_metrics, &profile, &dropped);
        }
    }
    let report = StudyReport::build(&networks);

    if want("fig8") {
        fig8(&report);
    }
    if want("table1") {
        table1(&report);
    }
    if want("fig11") {
        fig11(&report);
    }
    if want("table3") {
        table3(&report);
    }
    if want("section7") {
        section7(&report);
    }
    if want("fig4") {
        fig4(&networks);
    }
    if want("net5") {
        net5(&networks);
    }
    if want("net15") {
        net15(&networks);
    }
    finish_and_exit(show_metrics, &profile, &dropped);
}

/// End-of-run bookkeeping shared by every mode: optional metrics dump,
/// the collapsed-stack profile if `--profile` asked for one, then a
/// trace flush so the JSONL sink is complete on exit.
fn finish(show_metrics: bool, profile: &Option<String>) {
    if show_metrics {
        eprint!("{}", rd_obs::metrics::dump());
    }
    if let Some(path) = profile {
        match rd_obs::profile::write_folded(path) {
            Ok(()) => eprintln!("profile: collapsed stacks written to {path}"),
            Err(e) => eprintln!("repro: cannot write profile {path}: {e}"),
        }
    }
    rd_obs::trace::flush();
}

/// Terminal bookkeeping for a study run: any network dropped by the error
/// budget makes the whole run exit 1, so scripts cannot mistake a partial
/// study for a complete one.
fn finish_and_exit(
    show_metrics: bool,
    profile: &Option<String>,
    dropped: &[rd_bench::StudyDrop],
) -> ! {
    finish(show_metrics, profile);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if dropped.is_empty() {
        std::process::exit(0);
    }
    eprintln!(
        "repro: {} network(s) dropped by the error budget; study aggregates are partial",
        dropped.len()
    );
    std::process::exit(1);
}

/// The per-network parse coverage table printed by chaos runs: every
/// surviving network's file counts, then the dropped networks.
fn coverage_table(networks: &[StudyNetwork], dropped: &[rd_bench::StudyDrop]) {
    heading("Per-network parse coverage (degraded pipeline)");
    println!(
        "{:<10} {:>6} {:>7} {:>12} {:>9}",
        "network", "files", "parsed", "quarantined", "status"
    );
    for n in networks {
        let c = &n.analysis.network.coverage;
        println!(
            "{:<10} {:>6} {:>7} {:>12} {:>9}",
            n.name,
            c.total_files,
            c.parsed(),
            c.quarantined.len(),
            if c.degraded() { "DEGRADED" } else { "ok" }
        );
    }
    for d in dropped {
        println!(
            "{:<10} {:>6} {:>7} {:>12} {:>9}",
            d.name,
            d.total_files,
            d.total_files - d.quarantined,
            d.quarantined,
            "DROPPED"
        );
    }
}

/// The `diag` target: per-network diagnostic totals from the `rd-obs`
/// channel (parse, topology, and design level all counted).
fn diag(networks: &[StudyNetwork]) {
    heading("Pipeline diagnostics per network");
    println!("{:<10} {:>7} {:>7} {:>8} {:>6}", "network", "errors", "warns", "infos", "total");
    let mut totals = (0usize, 0usize, 0usize);
    for n in networks {
        let d = &n.analysis.diagnostics;
        let (errors, warnings, infos) = d.counts();
        totals = (totals.0 + errors, totals.1 + warnings, totals.2 + infos);
        println!(
            "{:<10} {:>7} {:>7} {:>8} {:>6}",
            n.name,
            errors,
            warnings,
            infos,
            d.len()
        );
    }
    println!(
        "{:<10} {:>7} {:>7} {:>8} {:>6}",
        "total",
        totals.0,
        totals.1,
        totals.2,
        totals.0 + totals.1 + totals.2
    );
}

fn bench(small_only: bool) {
    let scales: &[StudyScale] = if small_only {
        &[StudyScale::Small]
    } else {
        &[StudyScale::Small, StudyScale::Full]
    };
    let bench_scale_for_snap = if small_only { StudyScale::Small } else { StudyScale::Full };
    let results: Vec<_> = scales
        .iter()
        .map(|&scale| {
            eprintln!(
                "benching {} scale on {} thread(s)...",
                match scale {
                    StudyScale::Small => "small",
                    StudyScale::Full => "full",
                },
                rd_par::thread_count(),
            );
            let result = bench_scale(scale);
            eprintln!(
                "  wall {:.1} ms{}",
                result.wall.as_secs_f64() * 1e3,
                match result.speedup() {
                    Some(s) => format!(
                        " (sequential {:.1} ms, speedup {s:.2}x)",
                        result.sequential_wall.expect("measured").as_secs_f64() * 1e3
                    ),
                    None => String::new(),
                }
            );
            eprint!("{}", result.stage_totals());
            result
        })
        .collect();
    eprintln!("benching external-classification stage in isolation...");
    let external = rd_bench::timing::bench_external(bench_scale_for_snap);
    eprintln!(
        "  external: {} ({} routers, {} interfaces) built in {:.1} ms",
        external.network,
        external.routers,
        external.interfaces,
        external.build.as_secs_f64() * 1e3,
    );
    eprintln!("benching snapshot round trip + query server...");
    let networks = analyzed_study(bench_scale_for_snap);
    let (snap, corpus) = rd_bench::timing::bench_snapshot(networks);
    eprintln!(
        "  snapshot: {} bytes, write {:.1} ms, load {:.1} ms vs analyze {:.1} ms ({:.0}x)",
        snap.bytes,
        snap.write.as_secs_f64() * 1e3,
        snap.load.as_secs_f64() * 1e3,
        snap.analyze.as_secs_f64() * 1e3,
        snap.speedup(),
    );
    // Serve capacity is measured on the paper-scale corpus even when the
    // analysis benches run full scale: full-scale summary bodies reach
    // 1.4 MB, so a mixed run against them measures loopback byte
    // throughput (~12k req/s no matter how the server is built), not
    // request handling. EXPERIMENTS.md records both figures.
    let serve_corpus = if small_only {
        corpus
    } else {
        drop(corpus);
        rd_bench::timing::study_corpus(StudyScale::Small)
    };
    let load = rd_bench::loadgen::LoadOptions::default();
    let (serve, serve_load) =
        rd_bench::timing::bench_serve_with_load(serve_corpus, 200, &load);
    eprintln!(
        "  serve: {} requests, p50 {} us, p99 {} us, {:.0} req/s",
        serve.requests, serve.p50_us, serve.p99_us, serve.throughput_rps,
    );
    eprintln!(
        "  loadgen: {} conns x {} pipelined, {} requests ({} errors), {:.0} req/s, \
         p50 {} us, p99 {} us, p99.9 {} us",
        serve_load.conns,
        serve_load.pipeline,
        serve_load.requests,
        serve_load.errors,
        serve_load.throughput_rps,
        serve_load.p50_us,
        serve_load.p99_us,
        serve_load.p999_us,
    );
    eprintln!("benching reconfiguration planning scenarios...");
    let plans = rd_bench::timing::bench_plan();
    for p in &plans {
        eprintln!(
            "  plan {}: {} router(s), {} unit(s), {} intermediate state(s) analyzed, \
             diff {:.1} ms, dag {:.1} ms, search {:.1} ms",
            p.scenario,
            p.routers,
            p.units,
            p.states_analyzed,
            p.diff.as_secs_f64() * 1e3,
            p.dag.as_secs_f64() * 1e3,
            p.search.as_secs_f64() * 1e3,
        );
    }
    eprintln!("benching incremental re-analysis (delta engine)...");
    let incremental = rd_bench::timing::bench_incremental(bench_scale_for_snap);
    eprintln!(
        "  incremental: {} network(s), cold {:.1} ms; 1-router change {:.1} ms \
         ({} reused, {} recomputed, {} file(s) reparsed, {:.1}x); \
         5-network change {:.1} ms ({} reused, {} recomputed)",
        incremental.networks,
        incremental.cold.as_secs_f64() * 1e3,
        incremental.one_change.as_secs_f64() * 1e3,
        incremental.one_stats.reused,
        incremental.one_stats.recomputed,
        incremental.one_stats.files_reparsed,
        incremental.one_change_speedup(),
        incremental.five_change.as_secs_f64() * 1e3,
        incremental.five_stats.reused,
        incremental.five_stats.recomputed,
    );
    let path = "BENCH_repro.json";
    std::fs::write(
        path,
        render_json(
            &results,
            Some(&snap),
            Some(&serve),
            Some(&serve_load),
            Some(&external),
            Some(&plans),
            Some(&incremental),
        ),
    )
    .expect("write BENCH_repro.json");
    eprintln!("wrote {path}");
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn row(label: &str, paper: &str, measured: String) {
    println!("{label:<46} {paper:>16} {measured:>16}");
}

fn header() {
    println!("{:<46} {:>16} {:>16}", "claim", "paper", "measured");
}

fn fig8(report: &StudyReport) {
    heading("Figure 8: network size distribution (study vs repository)");
    let hist = report.size_histogram(&repository_sizes(17));
    print!("{hist}");
    header();
    row(
        "repository networks with <10 routers",
        "~55%",
        format!("{:.0}%", hist.buckets[0].2 * 100.0),
    );
    row(
        "study networks with <10 routers",
        "minority",
        format!("{:.0}%", hist.buckets[0].1 * 100.0),
    );
    row(
        "study overweights networks >20 routers",
        "yes",
        format!(
            "{}",
            hist.buckets[2..].iter().map(|b| b.1).sum::<f64>()
                > hist.buckets[2..].iter().map(|b| b.2).sum::<f64>()
        ),
    );
}

fn table1(report: &StudyReport) {
    heading("Table 1: protocol instances by intra-/inter-domain role");
    print!("{}", report.table1);
    header();
    row(
        "IGP instances in inter-domain role",
        "~11%",
        format!("{:.1}%", report.table1.igp_inter_fraction() * 100.0),
    );
    row(
        "EBGP sessions used intra-network",
        "~10%",
        format!("{:.1}%", report.table1.ebgp_intra_fraction() * 100.0),
    );
    let igp = report.table1.igp_totals();
    row("IGP instances intra (paper 22,521 total)", "22,521", igp.intra.to_string());
    row("IGP instances inter (paper 2,664 total)", "2,664", igp.inter.to_string());
    row(
        "EBGP sessions inter",
        "13,830",
        report.table1.ebgp_sessions.inter.to_string(),
    );
    row(
        "EBGP sessions intra",
        "1,490",
        report.table1.ebgp_sessions.intra.to_string(),
    );
    row(
        "EIGRP ≥ OSPF ≥ RIP (intra ordering)",
        "yes",
        format!(
            "{}",
            report.table1.igp_row("EIGRP").intra >= report.table1.igp_row("OSPF").intra
                && report.table1.igp_row("OSPF").intra
                    >= report.table1.igp_row("RIP").intra
        ),
    );
    row("IS-IS instances", "0", "0".to_string());
}

fn fig11(report: &StudyReport) {
    heading("Figure 11: CDF of % filter rules on internal links");
    print!("{}", report.filter_cdf);
    header();
    row("networks with no packet filters", "3", report.filter_cdf.filterless.to_string());
    row(
        "networks with ≥40% of rules internal",
        ">30%",
        format!("{:.0}%", report.filter_cdf.fraction_at_least(0.4) * 100.0),
    );
}

fn table3(report: &StudyReport) {
    heading("Table 3: interface census");
    print!("{}", render_table3(&report.census));
    header();
    row("total interfaces", "96,487", report.census.total.to_string());
    row("Serial (most common)", "53,337", report.census.count("Serial").to_string());
    row("FastEthernet (second)", "20,420", report.census.count("FastEthernet").to_string());
    row("unnumbered interfaces", "528", report.census.unnumbered.to_string());
    row(
        "Serial share",
        "55%",
        format!("{:.0}%", 100.0 * report.census.count("Serial") as f64 / report.census.total as f64),
    );
}

fn section7(report: &StudyReport) {
    heading("Section 7: design classification");
    print!("{}", report.section7);
    header();
    row("textbook backbones", "4", report.section7.count(DesignClass::Backbone).to_string());
    row("textbook enterprises", "7", report.section7.count(DesignClass::Enterprise).to_string());
    row("other (defy classification)", "20", report.section7.nonclassic().len().to_string());
    row("networks without BGP", "3", report.section7.count(DesignClass::NoBgp).to_string());
    if let Some((min, max, mean, _)) = report.section7.size_stats(DesignClass::Backbone) {
        row("backbone size range", "400–600", format!("{min}–{max}"));
        row("backbone mean size", "540", format!("{mean:.0}"));
    }
    if let Some((min, max, _, _)) = report.section7.size_stats(DesignClass::Enterprise) {
        row("enterprise size range", "19–101", format!("{min}–{max}"));
    }
    let nonclassic = report.section7.nonclassic();
    if !nonclassic.is_empty() {
        let median = nonclassic[nonclassic.len() / 2];
        let mean: f64 =
            nonclassic.iter().sum::<usize>() as f64 / nonclassic.len() as f64;
        row(
            "other sizes",
            "4–1750",
            format!("{}–{}", nonclassic[0], nonclassic.last().copied().unwrap_or(nonclassic[0])),
        );
        row("other mean / median", "300 / 36", format!("{mean:.0} / {median}"));
    }
    row("networks redistributing BGP into IGP", "17", report.section7.bgp_into_igp.to_string());
}

fn fig4(networks: &[StudyNetwork]) {
    heading("Figure 4: configuration sizes of net5");
    let Some(net5) = networks.iter().find(|n| n.name == "net5") else {
        println!("net5 was dropped from this run (error budget); skipping");
        return;
    };
    let stats = nettopo::stats::ConfigSizeStats::of(&net5.analysis.network);
    print!("{}", render_fig4(&stats));
    header();
    row("routers in net5", "881", net5.analysis.network.len().to_string());
    row("mean config lines", "~270", format!("{:.0}", stats.mean()));
    row("total commands", "237,870", stats.total_commands.to_string());
    row(
        "long tail (max >> median)",
        "yes (max ~1,900)",
        format!("max {} vs median {}", stats.max(), stats.quantile(0.5)),
    );
}

fn net5(networks: &[StudyNetwork]) {
    heading("net5 case study (Figures 9 & 10, Sections 5.1 & 6.1)");
    let Some(study) = networks.iter().find(|n| n.name == "net5") else {
        println!("net5 was dropped from this run (error budget); skipping");
        return;
    };
    let a = &study.analysis;
    let (Some(largest), Some(smallest)) = (a.instances.list.first(), a.instances.list.last())
    else {
        println!("net5 has no routing instances in this run; skipping");
        return;
    };
    header();
    row("routers", "881", a.network.len().to_string());
    row("routing instances", "24", a.instances.len().to_string());
    row("largest instance (EIGRP)", "445", largest.router_count().to_string());
    row("smallest instance", "1", smallest.router_count().to_string());
    row("internal BGP ASes", "14", a.design.internal_ases.to_string());
    row("external peer ASes", "16", a.instance_graph.external_ases().len().to_string());
    let inst1 = a
        .instances
        .list
        .iter()
        .find(|i| i.kind == routing_design::ProtoKind::Eigrp);
    let inst4 = a
        .instances
        .list
        .iter()
        .find(|i| i.asn == Some(netgen::designs::net5::AS_INSTANCE4));
    let (Some(inst1), Some(inst4)) = (inst1, inst4) else {
        println!("net5 lost its case-study landmark instances in this run; skipping remainder");
        return;
    };
    row(
        "redundant redistributors (inst 4 ↔ inst 1)",
        "6",
        a.instance_graph.redistribution_routers(inst4.id, inst1.id).len().to_string(),
    );
    let spoke = a
        .network
        .iter()
        .find(|(_, r)| {
            r.config.bgp.is_none() && r.config.eigrp.first().is_some_and(|p| p.asn == 10)
        })
        .map(|(id, _)| id);
    let Some(spoke) = spoke else {
        println!("net5 lost its plain-spoke router in this run; skipping remainder");
        return;
    };
    let pathway = a.pathway(spoke);
    row(
        "protocol layers to interior router",
        "≥3",
        pathway.max_depth().to_string(),
    );
    row("classification", "defies textbook", a.design.class.to_string());
}

fn net15(networks: &[StudyNetwork]) {
    heading("net15 case study (Figure 12 & Table 2, Section 6.2)");
    let Some(study) = networks.iter().find(|n| n.name == "net15") else {
        println!("net15 was dropped from this run (error budget); skipping");
        return;
    };
    let a = &study.analysis;
    header();
    row("routers", "79", a.network.len().to_string());
    row("routing instances", "6", a.instances.len().to_string());
    row(
        "public peer ASes",
        "2",
        a.instance_graph.external_ases().len().to_string(),
    );
    let reach = a.reachability();
    let default_anywhere = a.instances.list.iter().any(|i| {
        reach.external_routes_entering(i.id).covers_prefix(Prefix::DEFAULT)
    });
    row("default route admitted", "no", format!("{}", !default_anywhere).replace("true", "no").replace("false", "YES"));
    let ab2: Prefix = "10.2.0.0/16".parse().expect("AB2");
    let ab4: Prefix = "10.4.0.0/16".parse().expect("AB4");
    row(
        "site isolation (AB2 ↮ AB4)",
        "isolated",
        if !reach.block_reachable(ab2, ab4) && !reach.block_reachable(ab4, ab2) {
            "isolated".to_string()
        } else {
            "REACHABLE".to_string()
        },
    );
    // Table 2 disjointness.
    for (x, y) in [("A2", "A5"), ("A2", "A3"), ("A4", "A1")] {
        let sx = policy_set(x);
        let sy = policy_set(y);
        row(
            &format!("{x} ∩ {y}"),
            "∅",
            if sx.intersection(&sy).is_empty() { "∅".to_string() } else { "NON-EMPTY".to_string() },
        );
    }
    // Ingress ceiling.
    let Some(ospf) = a
        .instances
        .list
        .iter()
        .find(|i| i.kind == routing_design::ProtoKind::Ospf)
    else {
        println!("net15 lost its site OSPF instance in this run; skipping remainder");
        return;
    };
    let load = reach.load_prediction(ospf.id);
    row(
        "max external routes into site IGP",
        "2 /16s + 3 /24s",
        match load.max_external_routes {
            Some(n) => format!("{n} prefixes"),
            None => "unbounded".to_string(),
        },
    );
}

fn policy_set(policy: &str) -> routing_design::PrefixSet {
    let blocks = netgen::designs::net15::address_blocks();
    let contents = netgen::designs::net15::policy_blocks()
        .into_iter()
        .find(|(name, _)| *name == policy)
        .expect("known policy")
        .1;
    let mut set = routing_design::PrefixSet::empty();
    for ab in contents {
        for p in &blocks.iter().find(|(n, _)| *n == ab).expect("known block").1 {
            set = set.union(&routing_design::PrefixSet::from_prefix(*p));
        }
    }
    set
}
