//! Standalone load generator for a live `rdx serve` instance.
//!
//! ```sh
//! cargo run --release -p rd-bench --bin loadgen -- 127.0.0.1:8080 \
//!     --conns 4 --pipeline 64 --duration-ms 3000 --json
//! ```
//!
//! Drives mixed-endpoint keep-alive traffic (every static endpoint plus
//! both per-network routes, discovered from `/networks` unless `--paths`
//! overrides them) and prints throughput and exact p50/p99/p999
//! latencies — aggregate and per endpoint, so a slow path cannot hide
//! behind a fast mix. `--json` emits the same data as one machine-
//! readable JSON object with an `endpoints` array. Exits 1 when any
//! response failed or came back non-200, so verify.sh can use it as a
//! pass/fail burst probe.

use std::io::{Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use rd_bench::loadgen::{self, LoadOptions};

fn usage() -> String {
    "usage: loadgen <addr> [--conns N] [--pipeline N] [--duration <secs>] \
     [--duration-ms N] [--batches N] [--paths /a,/b,...] [--connect-retries N] [--json]\n\
     time-bounded by default (--duration/--duration-ms); --batches N switches to \
     batch-count mode (each connection issues exactly N pipelined batches)"
        .to_string()
}

fn fail(message: &str) -> ! {
    eprintln!("loadgen: {message}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

/// One `connection: close` GET used for path discovery.
fn fetch(addr: SocketAddr, path: &str, retries: u32) -> Result<String, String> {
    let mut stream = loadgen::connect_with_retries(addr, retries)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: loadgen\r\nconnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut out = String::new();
    stream.read_to_string(&mut out).map_err(|e| format!("read: {e}"))?;
    let (head, body) = out.split_once("\r\n\r\n").ok_or("malformed response")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("GET {path}: {}", head.lines().next().unwrap_or("")));
    }
    Ok(body.to_string())
}

/// Network names scraped from the `/networks` index body.
fn discover_networks(addr: SocketAddr, retries: u32) -> Result<Vec<String>, String> {
    let body = fetch(addr, "/networks", retries)?;
    let mut names = Vec::new();
    let mut rest = body.as_str();
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + 9..];
        let Some(end) = rest.find('"') else { break };
        names.push(rest[..end].to_string());
        rest = &rest[end..];
    }
    Ok(names)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr_arg: Option<String> = None;
    let mut opts = LoadOptions::default();
    let mut json = false;

    let positive = |flag: &str, value: Option<String>| -> usize {
        match value.and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => fail(&format!("{flag} needs a positive integer")),
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conns" => opts.conns = positive("--conns", args.next()),
            "--pipeline" => opts.pipeline = positive("--pipeline", args.next()),
            "--duration" => {
                opts.duration = Duration::from_secs(positive("--duration", args.next()) as u64)
            }
            "--duration-ms" => {
                opts.duration =
                    Duration::from_millis(positive("--duration-ms", args.next()) as u64)
            }
            "--batches" => opts.max_batches = Some(positive("--batches", args.next()) as u64),
            "--paths" => match args.next() {
                Some(list) => {
                    opts.paths = list.split(',').map(str::to_string).collect();
                }
                None => fail("--paths needs a comma-separated list"),
            },
            "--connect-retries" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => opts.connect_retries = n,
                None => fail("--connect-retries needs a number (0 disables retries)"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag {flag}")),
            positional if addr_arg.is_none() => addr_arg = Some(positional.to_string()),
            extra => fail(&format!("unexpected argument {extra}")),
        }
    }
    let Some(addr_arg) = addr_arg else { fail("missing server address") };
    let addr: SocketAddr = match addr_arg.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => fail(&format!("cannot resolve address {addr_arg}")),
    };

    if opts.paths.is_empty() {
        match discover_networks(addr, opts.connect_retries) {
            Ok(names) => opts.paths = loadgen::mixed_paths(&names),
            Err(e) => {
                eprintln!("loadgen: path discovery failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let stats = match loadgen::run(addr, &opts) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };

    if json {
        let endpoints: Vec<String> = stats
            .endpoints
            .iter()
            .map(|e| {
                format!(
                    "    {{\"path\": \"{}\", \"requests\": {}, \"p50_us\": {}, \
                     \"p99_us\": {}, \"p999_us\": {}}}",
                    rd_obs::json::escape(&e.path),
                    e.requests,
                    e.p50_us,
                    e.p99_us,
                    e.p999_us,
                )
            })
            .collect();
        println!(
            "{{\n  \"conns\": {},\n  \"pipeline\": {},\n  \"duration_ms\": {:.3},\n  \
             \"requests\": {},\n  \"errors\": {},\n  \"throughput_rps\": {:.0},\n  \
             \"p50_us\": {},\n  \"p99_us\": {},\n  \"p999_us\": {},\n  \"body_bytes\": {},\n  \
             \"endpoints\": [\n{}\n  ]\n}}",
            opts.conns,
            opts.pipeline,
            stats.duration.as_secs_f64() * 1e3,
            stats.requests,
            stats.errors,
            stats.throughput_rps,
            stats.p50_us,
            stats.p99_us,
            stats.p999_us,
            stats.body_bytes,
            endpoints.join(",\n"),
        );
    } else {
        println!(
            "loadgen: {} conns x {} pipelined against {addr}, {:.0} ms",
            opts.conns,
            opts.pipeline,
            stats.duration.as_secs_f64() * 1e3,
        );
        println!(
            "  {} requests ({} errors), {:.0} req/s",
            stats.requests, stats.errors, stats.throughput_rps,
        );
        println!(
            "  latency p50 {} us, p99 {} us, p99.9 {} us",
            stats.p50_us, stats.p99_us, stats.p999_us,
        );
        for e in &stats.endpoints {
            println!(
                "  {:<32} {:>8} reqs  p50 {:>6} us  p99 {:>6} us  p99.9 {:>6} us",
                e.path, e.requests, e.p50_us, e.p99_us, e.p999_us,
            );
        }
    }
    if stats.errors > 0 {
        std::process::exit(1);
    }
}
