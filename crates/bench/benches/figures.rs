//! Criterion benchmarks for regenerating each of the paper's tables and
//! figures (one bench per table/figure, on the small-scale study so a
//! bench run stays tractable; the `repro` binary produces the full-scale
//! numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use netgen::{repository_sizes, StudyScale};
use rd_bench::analyzed_study;
use routing_design::report::{FilterCdf, Section7Report, SizeHistogram, StudyReport};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    // The expensive part — generating and analyzing the corpus — is done
    // once; each figure bench then measures its aggregation cost.
    let networks = analyzed_study(StudyScale::Small);
    let repo = repository_sizes(17);

    c.bench_function("table1_roles", |b| {
        b.iter(|| {
            let mut t = routing_design::Table1::default();
            for n in &networks {
                t.add(&n.analysis.table1);
            }
            black_box(t.igp_inter_fraction())
        })
    });

    c.bench_function("table3_census", |b| {
        b.iter(|| {
            let mut census = nettopo::stats::InterfaceCensus::default();
            for n in &networks {
                census.add(&n.analysis.network);
            }
            black_box(census.total)
        })
    });

    c.bench_function("fig4_config_sizes", |b| {
        let net5 = networks.iter().find(|n| n.name == "net5").expect("net5");
        b.iter(|| {
            black_box(nettopo::stats::ConfigSizeStats::of(&net5.analysis.network).mean())
        })
    });

    c.bench_function("fig8_size_distribution", |b| {
        let sizes: Vec<usize> =
            networks.iter().map(|n| n.analysis.network.len()).collect();
        b.iter(|| black_box(SizeHistogram::build(&sizes, &repo).buckets.len()))
    });

    c.bench_function("fig11_filter_cdf", |b| {
        b.iter(|| black_box(FilterCdf::build(&networks).fraction_at_least(0.4)))
    });

    c.bench_function("section7_classify", |b| {
        b.iter(|| black_box(Section7Report::build(&networks).bgp_into_igp))
    });

    c.bench_function("full_study_report", |b| {
        b.iter(|| black_box(StudyReport::build(&networks).sizes.len()))
    });

    // The per-network pipeline on the case studies (generation included),
    // the dominant cost of regenerating Figures 9/10/12.
    c.bench_function("net5_pipeline", |b| {
        b.iter(|| {
            let texts = rd_bench::generate_named("net5", StudyScale::Small);
            black_box(
                routing_design::NetworkAnalysis::from_texts(texts)
                    .expect("parses")
                    .instances
                    .len(),
            )
        })
    });

    c.bench_function("net15_reachability", |b| {
        let texts = rd_bench::generate_named("net15", StudyScale::Small);
        let analysis =
            routing_design::NetworkAnalysis::from_texts(texts).expect("parses");
        let ab2: netaddr::Prefix = "10.2.0.0/16".parse().expect("AB2");
        let ab4: netaddr::Prefix = "10.4.0.0/16".parse().expect("AB4");
        b.iter(|| {
            let reach = analysis.reachability();
            black_box(reach.block_reachable(ab2, ab4))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
