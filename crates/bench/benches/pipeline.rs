//! Criterion benchmarks for every pipeline stage, plus the representation
//! ablations DESIGN.md calls out:
//!
//! - link inference: hash-join (`LinkMap::build`) vs quadratic scan;
//! - instance computation: union-find vs BFS closure;
//! - prefix-set membership: sorted ranges (`PrefixSet`) vs binary trie.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netgen::StudyScale;
use rd_bench::{bfs_instance_closure, generate_named, quadratic_link_join};
use std::hint::black_box;

/// A mid-size corpus for the stage benches (net2 = a 56-router backbone
/// at small scale).
fn corpus() -> Vec<(String, String)> {
    generate_named("net2", StudyScale::Small)
}

fn bench_parse(c: &mut Criterion) {
    let texts = corpus();
    let total_bytes: usize = texts.iter().map(|(_, t)| t.len()).sum();
    let mut group = c.benchmark_group("parse");
    group.throughput(criterion::Throughput::Bytes(total_bytes as u64));
    group.bench_function("parse_corpus", |b| {
        b.iter(|| {
            for (_, text) in &texts {
                black_box(ioscfg::parse_config(text).expect("parses"));
            }
        })
    });
    group.finish();
}

fn bench_link_inference(c: &mut Criterion) {
    let net = nettopo::Network::from_texts(corpus()).expect("parses");
    let mut group = c.benchmark_group("link_inference");
    group.bench_function("hash_join", |b| {
        b.iter(|| black_box(nettopo::LinkMap::build(&net).links.len()))
    });
    group.bench_function("quadratic_scan", |b| {
        b.iter(|| black_box(quadratic_link_join(&net)))
    });
    group.finish();
}

fn bench_instances(c: &mut Criterion) {
    let net = nettopo::Network::from_texts(corpus()).expect("parses");
    let links = nettopo::LinkMap::build(&net);
    let external = nettopo::ExternalAnalysis::build(&net, &links);
    let procs = routing_design::Processes::extract(&net);
    let adj = routing_design::Adjacencies::build(&net, &links, &procs, &external);
    let mut group = c.benchmark_group("instances");
    group.bench_function("union_find", |b| {
        b.iter(|| black_box(routing_design::Instances::compute(&procs, &adj).len()))
    });
    group.bench_function("bfs_closure", |b| {
        b.iter(|| black_box(bfs_instance_closure(&procs, &adj)))
    });
    group.finish();
}

fn bench_prefixset_repr(c: &mut Criterion) {
    // 1,000 prefixes, 10,000 membership probes: ranges vs trie.
    let prefixes: Vec<netaddr::Prefix> = (0..1000u32)
        .map(|i| {
            netaddr::Prefix::new(
                netaddr::Addr::from_u32(0x0a00_0000 + i * 0x1_0000),
                24,
            )
            .expect("valid")
        })
        .collect();
    let probes: Vec<netaddr::Addr> = (0..10_000u32)
        .map(|i| netaddr::Addr::from_u32(0x0a00_0000 + i * 0x397))
        .collect();
    let set = netaddr::PrefixSet::from_prefixes(prefixes.iter().copied());
    let mut trie = netaddr::PrefixTrie::new();
    for p in &prefixes {
        trie.insert(*p, ());
    }
    let mut group = c.benchmark_group("prefixset_repr");
    group.bench_function("sorted_ranges", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if set.contains(*a) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("binary_trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if trie.lookup(*a).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let texts = corpus();
    c.bench_function("full_pipeline/one_network", |b| {
        b.iter_batched(
            || texts.clone(),
            |t| black_box(routing_design::NetworkAnalysis::from_texts(t).expect("parses")),
            BatchSize::LargeInput,
        )
    });
}

fn bench_anonymization(c: &mut Criterion) {
    let texts = corpus();
    let anon = anonymizer::Anonymizer::new(b"bench-key");
    let total_bytes: usize = texts.iter().map(|(_, t)| t.len()).sum();
    let mut group = c.benchmark_group("anonymization");
    group.throughput(criterion::Throughput::Bytes(total_bytes as u64));
    group.bench_function("anonymize_corpus", |b| {
        b.iter(|| {
            for (_, text) in &texts {
                black_box(anon.anonymize_config(text));
            }
        })
    });
    group.finish();
}

fn bench_reachability(c: &mut Criterion) {
    let texts = generate_named("net15", StudyScale::Small);
    let net = nettopo::Network::from_texts(texts).expect("parses");
    let links = nettopo::LinkMap::build(&net);
    let external = nettopo::ExternalAnalysis::build(&net, &links);
    let procs = routing_design::Processes::extract(&net);
    let adj = routing_design::Adjacencies::build(&net, &links, &procs, &external);
    let instances = routing_design::Instances::compute(&procs, &adj);
    let ab2: netaddr::Prefix = "10.2.0.0/16".parse().expect("AB2");
    let ab4: netaddr::Prefix = "10.4.0.0/16".parse().expect("AB4");
    c.bench_function("reachability/net15_isolation", |b| {
        b.iter(|| {
            let reach =
                reachability::ReachAnalysis::new(&net, &procs, &adj, &instances);
            black_box(reach.block_reachable(ab2, ab4))
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_link_inference,
    bench_instances,
    bench_prefixset_repr,
    bench_full_pipeline,
    bench_anonymization,
    bench_reachability,
);
criterion_main!(benches);
