//! Criterion microbenchmarks for the prefix/interval index layer that
//! backs the external-classification stage: each indexed query (`AddrSet`
//! range membership, `PrefixMap` longest-prefix match,
//! `PrefixSet::intersects_prefix`, `PrefixSet` membership) measured
//! against the naive linear scan it replaced.

use criterion::{criterion_group, criterion_main, Criterion};
use netaddr::{Addr, AddrSet, Prefix, PrefixMap, PrefixSet};
use std::hint::black_box;

/// Scattered interface-style addresses inside 10.0.0.0/8 — the shape of
/// the external next-hop set the classifier queries per interface.
fn sample_addrs(n: u32) -> Vec<Addr> {
    (0..n)
        .map(|i| Addr::from_u32(0x0a00_0000 | (i.wrapping_mul(0x0001_003b) & 0x00ff_ffff)))
        .collect()
}

/// Point-to-point /30 subnets scattered over the same block — the probe
/// prefixes `classify_iface` asks range queries about.
fn sample_probes(n: u32) -> Vec<Prefix> {
    (0..n)
        .map(|i| {
            Prefix::new(
                Addr::from_u32(0x0a00_0000 | (i.wrapping_mul(0x0000_9e3b) & 0x00ff_fffc)),
                30,
            )
            .expect("len <= 32")
        })
        .collect()
}

/// Nested address blocks: /16 roots each carved into /24 leaves — the
/// shape `find_missing_hints` looks prefixes up in.
fn sample_blocks() -> Vec<Prefix> {
    let mut out = Vec::new();
    for root in 0..4u32 {
        let base = 0x0a00_0000 + (root << 16);
        out.push(Prefix::new(Addr::from_u32(base), 16).expect("len <= 32"));
        for leaf in 0..256u32 {
            out.push(Prefix::new(Addr::from_u32(base + (leaf << 8)), 24).expect("len <= 32"));
        }
    }
    out
}

fn bench_addr_set_range(c: &mut Criterion) {
    let addrs = sample_addrs(5_000);
    let probes = sample_probes(2_000);
    let set = AddrSet::new(addrs.clone());
    let mut group = c.benchmark_group("prefix_index/addr_range");
    group.bench_function("addr_set_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if set.any_in_prefix(*p) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("naive_linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if addrs.iter().any(|a| p.contains(*a)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_prefix_map_lpm(c: &mut Criterion) {
    let blocks = sample_blocks();
    let probes = sample_addrs(10_000);
    let map: PrefixMap<usize> = blocks.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut group = c.benchmark_group("prefix_index/lpm");
    group.bench_function("prefix_map_walk_up", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if map.lookup(*a).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("naive_linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if blocks
                    .iter()
                    .filter(|p| p.contains(*a))
                    .max_by_key(|p| p.len())
                    .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_intersects_prefix(c: &mut Criterion) {
    let set = PrefixSet::from_prefixes(sample_blocks().into_iter());
    let probes = sample_probes(2_000);
    let mut group = c.benchmark_group("prefix_index/intersects");
    group.bench_function("binary_search", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if set.intersects_prefix(*p) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("allocating_intersection", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if !set.intersection(&PrefixSet::from_prefix(*p)).is_empty() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_prefixset_lookup(c: &mut Criterion) {
    let blocks = sample_blocks();
    let probes = sample_addrs(10_000);
    let set = PrefixSet::from_prefixes(blocks.iter().copied());
    let mut group = c.benchmark_group("prefix_index/membership");
    group.bench_function("prefixset_sorted_ranges", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if set.contains(*a) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("naive_linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for a in &probes {
                if blocks.iter().any(|p| p.contains(*a)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_addr_set_range,
    bench_prefix_map_lpm,
    bench_intersects_prefix,
    bench_prefixset_lookup,
);
criterion_main!(benches);
