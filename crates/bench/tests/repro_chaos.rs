//! `repro --chaos` end to end: a seeded fault in every network's corpus
//! must still produce the study tables, print the per-network coverage
//! table, and exit 1 exactly when the error budget dropped a network —
//! deterministically at any `RD_THREADS`.

use std::process::{Command, Output};

fn repro(chaos_seed: u64, budget: &str, threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--small", "table1", &format!("--chaos={chaos_seed}")])
        .env("RD_ERROR_BUDGET", budget)
        .env("RD_THREADS", threads)
        .output()
        .expect("spawn repro")
}

#[test]
fn zero_budget_drops_networks_and_exits_one() {
    let out = repro(3, "0", "2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // A zero budget tolerates no quarantined file, and the sweep's
    // invalid-utf8 / empty-file mutators guarantee some quarantines.
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stdout.contains("Per-network parse coverage (degraded pipeline)"),
        "coverage table missing:\n{stdout}"
    );
    assert!(stdout.contains("DROPPED"), "no dropped rows:\n{stdout}");
    assert!(
        stderr.contains("dropped by the error budget; study aggregates are partial"),
        "stderr:\n{stderr}"
    );
    // The surviving networks still made it into the report.
    assert!(stdout.contains("Table 1:"), "table missing:\n{stdout}");
}

#[test]
fn full_budget_keeps_every_network_and_exits_zero() {
    let out = repro(3, "1.0", "2");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");
    assert!(
        stdout.contains("Per-network parse coverage (degraded pipeline)"),
        "coverage table missing:\n{stdout}"
    );
    assert!(!stdout.contains("DROPPED"), "unexpected drop:\n{stdout}");
    // At least one network is degraded (faults were injected), and the
    // study still renders with all 31 networks present.
    assert!(stdout.contains("DEGRADED"), "no degraded rows:\n{stdout}");
    assert!(stdout.contains("Table 1:"), "table missing:\n{stdout}");
}

#[test]
fn chaos_run_is_deterministic_across_thread_counts() {
    let one = repro(11, "1.0", "1");
    let four = repro(11, "1.0", "4");
    assert_eq!(one.status.code(), four.status.code());
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&four.stdout),
        "repro --chaos stdout differs by RD_THREADS"
    );
}
