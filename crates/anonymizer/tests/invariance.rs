//! Anonymization invariance at the single-file level.
//!
//! The methodology requires that anonymized configurations describe the
//! *same routing design* as the originals. Here we check the file-level
//! half: an anonymized config still parses, with identical structure
//! (counts, process shapes, policy wiring) and consistently renamed user
//! data. The end-to-end network-level check lives in the workspace
//! integration tests.

use anonymizer::Anonymizer;
use ioscfg::{parse_config, RedistSource};
use netaddr::Addr;

const FIGURE2: &str = "\
hostname r2-border
!
interface Ethernet0
 ip address 66.251.75.144 255.255.255.128
 ip access-group 143 in
!
interface Serial1/0.5 point-to-point
 ip address 66.253.32.85 255.255.255.252
 ip access-group 143 in
 frame-relay interface-dlci 28
!
interface Hssi2/0 point-to-point
 ip address 66.253.160.67 255.255.255.252
!
router ospf 64
 redistribute connected metric-type 1 subnets
 redistribute bgp 64780 metric 1 subnets
 network 66.251.75.128 0.0.0.127 area 0
!
router ospf 128
 redistribute connected metric-type 1 subnets
 network 66.253.32.84 0.0.0.3 area 11
 distribute-list 44 in Serial1/0.5
 distribute-list 45 out
!
router bgp 64780
 redistribute ospf 64 match route-map corp-export-policy
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 distribute-list 4 in
 neighbor 66.253.160.68 distribute-list 3 out
!
access-list 143 deny 134.161.0.0 0.0.255.255
access-list 143 permit any
route-map corp-export-policy deny 10
 match ip address 4
route-map corp-export-policy permit 20
 match ip address 7
ip route 10.235.240.71 255.255.0.0 10.234.12.7
";

#[test]
fn figure2_anonymizes_to_isomorphic_structure() {
    let anon = Anonymizer::new(b"integration");
    let original = parse_config(FIGURE2).unwrap();
    let anonymized_text = anon.anonymize_config(FIGURE2);
    let anonymized = parse_config(&anonymized_text).unwrap();

    // No identifying strings leak.
    assert!(!anonymized_text.contains("corp-export-policy"));
    assert!(!anonymized_text.contains("r2-border"));
    assert!(!anonymized_text.contains("66.251.75.144"));

    // Structure is identical.
    assert_eq!(anonymized.interfaces.len(), original.interfaces.len());
    assert_eq!(anonymized.ospf.len(), original.ospf.len());
    assert_eq!(anonymized.ospf[0].id, 64); // process ids are plain integers
    assert_eq!(anonymized.ospf[0].redistribute.len(), 2);
    assert_eq!(
        anonymized.access_lists[&143].entries.len(),
        original.access_lists[&143].entries.len()
    );
    assert_eq!(anonymized.route_maps.len(), 1);
    let anon_map = anonymized.route_maps.values().next().unwrap();
    assert_eq!(anon_map.clauses.len(), 2);

    // Cross-references stay consistent: the BGP redistribute's route-map
    // name matches the route-map definition's name.
    let bgp = anonymized.bgp.as_ref().unwrap();
    assert_eq!(bgp.redistribute[0].route_map.as_deref(), Some(anon_map.name.as_str()));

    // The private-range BGP ASN is preserved; the public peer ASN is not.
    assert_eq!(bgp.asn, 64780);
    let peer_as = bgp.neighbors[0].remote_as.unwrap();
    assert_ne!(peer_as, 12762);

    // Subnet structure is preserved: the Serial interface still lives in a
    // /30, and redistribution sources still line up.
    assert_eq!(anonymized.interfaces[1].address.unwrap().subnet().len(), 30);
    assert_eq!(anonymized.ospf[0].redistribute[1].source, RedistSource::Bgp(64780));

    // The OSPF network statement still covers the Ethernet interface.
    let eth_addr = anonymized.interfaces[0].address.unwrap().addr;
    assert!(anonymized.ospf[0].covers(eth_addr));
}

#[test]
fn anonymization_is_idempotent_in_structure() {
    // Anonymizing twice (different keys) still parses to the same shape.
    let a1 = Anonymizer::new(b"first");
    let a2 = Anonymizer::new(b"second");
    let once = a1.anonymize_config(FIGURE2);
    let twice = a2.anonymize_config(&once);
    let m1 = parse_config(&once).unwrap();
    let m2 = parse_config(&twice).unwrap();
    assert_eq!(m1.interfaces.len(), m2.interfaces.len());
    assert_eq!(m1.ospf.len(), m2.ospf.len());
    assert_eq!(m1.unparsed.len(), 0);
    assert_eq!(m2.unparsed.len(), 0);
}

fn addr_class(x: Addr) -> char {
    match x.octets()[0] {
        0..=127 => 'A',
        128..=191 => 'B',
        192..=223 => 'C',
        _ => 'D',
    }
}

/// Fixed-seed sampled version of the proptest suite below: the same three
/// properties, checked over a deterministic `rd_rng` stream so they run
/// in every (offline) build.
mod fixed_seed {
    use super::*;
    use rd_rng::StdRng;

    /// Shared-prefix lengths are preserved exactly for arbitrary pairs.
    #[test]
    fn prefix_preservation_holds() {
        let mut rng = StdRng::seed_from_u64(0xA1);
        for _ in 0..2000 {
            let key: u64 = rng.gen_range(0..=u64::MAX);
            let anon = Anonymizer::new(&key.to_be_bytes());
            let a = Addr::from_u32(rng.next_u32());
            let b = Addr::from_u32(rng.next_u32());
            let (x, y) = (anon.anon_addr(a), anon.anon_addr(b));
            let before = (a.to_u32() ^ b.to_u32()).leading_zeros();
            let after = (x.to_u32() ^ y.to_u32()).leading_zeros();
            assert_eq!(before, after, "{a} vs {b} mapped to {x} vs {y}");
        }
    }

    /// The address class (A/B/C/D-E) is preserved, keeping classful
    /// `network` statements meaningful.
    #[test]
    fn class_preservation_holds() {
        let mut rng = StdRng::seed_from_u64(0xA2);
        for _ in 0..2000 {
            let key: u64 = rng.gen_range(0..=u64::MAX);
            let anon = Anonymizer::new(&key.to_be_bytes());
            let a = Addr::from_u32(rng.next_u32());
            let mapped = anon.anon_addr(a);
            assert_eq!(addr_class(a), addr_class(mapped), "{a} -> {mapped}");
        }
    }

    /// Token hashing never produces a keyword, a number, or a collisionish
    /// short string that the parser could misread.
    #[test]
    fn hashed_tokens_are_opaque_names() {
        let mut rng = StdRng::seed_from_u64(0xA3);
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        const REST: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
        for _ in 0..2000 {
            let key: u64 = rng.gen_range(0..=u64::MAX);
            let anon = Anonymizer::new(&key.to_be_bytes());
            let len: usize = rng.gen_range(0..=20);
            let mut token =
                String::from(FIRST[rng.gen_range(0..FIRST.len())] as char);
            for _ in 0..len {
                token.push(REST[rng.gen_range(0..REST.len())] as char);
            }
            let h = anon.hash_token(&token);
            assert_eq!(h.len(), 11, "token {token:?}");
            assert!(h.chars().next().unwrap().is_ascii_alphabetic());
            assert!(!ioscfg::is_keyword(&h), "hash {h:?} is a keyword");
            assert!(h.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }
}

/// The original proptest suite, kept for deeper shrinking-capable runs;
/// requires network access to fetch proptest (see DESIGN.md).
#[cfg(feature = "proptest-tests")]
mod proptest_suite {
    use super::*;
    use proptest::prelude::*;

    fn arb_addr() -> impl Strategy<Value = Addr> {
        any::<u32>().prop_map(Addr::from_u32)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Shared-prefix lengths are preserved exactly for arbitrary pairs.
        #[test]
        fn prefix_preservation_holds(a in arb_addr(), b in arb_addr(), key in any::<u64>()) {
            let anon = Anonymizer::new(&key.to_be_bytes());
            let (x, y) = (anon.anon_addr(a), anon.anon_addr(b));
            let before = (a.to_u32() ^ b.to_u32()).leading_zeros();
            let after = (x.to_u32() ^ y.to_u32()).leading_zeros();
            prop_assert_eq!(before, after, "{} vs {} mapped to {} vs {}", a, b, x, y);
        }

        /// The address class (A/B/C/D-E) is preserved, keeping classful
        /// `network` statements meaningful.
        #[test]
        fn class_preservation_holds(a in arb_addr(), key in any::<u64>()) {
            let anon = Anonymizer::new(&key.to_be_bytes());
            let mapped = anon.anon_addr(a);
            prop_assert_eq!(addr_class(a), addr_class(mapped));
        }

        /// Token hashing never produces a keyword, a number, or a collisionish
        /// short string that the parser could misread.
        #[test]
        fn hashed_tokens_are_opaque_names(token in "[a-zA-Z][a-zA-Z0-9_-]{0,20}", key in any::<u64>()) {
            let anon = Anonymizer::new(&key.to_be_bytes());
            let h = anon.hash_token(&token);
            prop_assert_eq!(h.len(), 11);
            prop_assert!(h.chars().next().unwrap().is_ascii_alphabetic());
            prop_assert!(!ioscfg::is_keyword(&h));
            prop_assert!(h.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }
}
