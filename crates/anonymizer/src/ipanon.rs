//! Prefix-preserving IP address anonymization.
//!
//! The construction is the one tcpdpriv's `-a50` mode and Crypto-PAn share:
//! the anonymized address is built bit by bit, and bit `i` of the output is
//! bit `i` of the input XORed with a pseudorandom function of the *first
//! `i` bits* of the input. Two addresses that agree on their first `k` bits
//! therefore agree on the first `k` bits of their anonymized forms — and
//! addresses that differ at bit `k` still differ at bit `k` (the XOR mask
//! is the same for both, since it depends only on the shared prefix). The
//! mapping is thus a prefix-structure-preserving bijection.

use netaddr::Addr;

use crate::sha1::sha1;

/// A keyed prefix-preserving anonymizer for IPv4 addresses.
pub struct IpAnonymizer {
    key: Vec<u8>,
}

impl IpAnonymizer {
    /// Creates an anonymizer keyed by `key`.
    pub fn new(key: &[u8]) -> IpAnonymizer {
        IpAnonymizer { key: key.to_vec() }
    }

    /// One pseudorandom bit derived from the key and a bit-prefix.
    fn prf_bit(&self, prefix_bits: u32, len: u8) -> u32 {
        let mut input = self.key.clone();
        input.extend_from_slice(b"ipv4");
        input.push(len);
        // Only the first `len` bits are meaningful; mask the rest so equal
        // prefixes give equal inputs regardless of trailing bits.
        let masked = if len == 0 { 0 } else { prefix_bits & (u32::MAX << (32 - len)) };
        input.extend_from_slice(&masked.to_be_bytes());
        (sha1(&input)[0] & 1) as u32
    }

    /// Anonymizes one address.
    ///
    /// The leading *class bits* (1 bit for class A, 2 for B, 3 for C, 4 for
    /// D/E) are preserved verbatim, as tcpdpriv does: classful commands
    /// like EIGRP/RIP `network 10.0.0.0` derive their prefix length from
    /// the address class, so class preservation is required for the
    /// anonymized configuration to describe the same routing design.
    pub fn anonymize(&self, addr: Addr) -> Addr {
        let input = addr.to_u32();
        let class_bits = Self::class_bits(input);
        let mut output = input & !(u32::MAX >> class_bits);
        for i in class_bits..32u8 {
            let input_bit = (input >> (31 - i)) & 1;
            let flip = self.prf_bit(input, i);
            output |= (input_bit ^ flip) << (31 - i);
        }
        Addr::from_u32(output)
    }

    /// Number of leading bits that determine the address class.
    fn class_bits(bits: u32) -> u8 {
        if bits >> 31 == 0 {
            1 // class A: 0xxx
        } else if bits >> 30 == 0b10 {
            2 // class B: 10xx
        } else if bits >> 29 == 0b110 {
            3 // class C: 110x
        } else {
            4 // class D/E: 1110 / 1111
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn shared_prefix_len(a: Addr, b: Addr) -> u8 {
        (a.to_u32() ^ b.to_u32()).leading_zeros() as u8
    }

    #[test]
    fn deterministic_under_same_key() {
        let x = IpAnonymizer::new(b"k");
        assert_eq!(x.anonymize(addr("10.1.2.3")), x.anonymize(addr("10.1.2.3")));
    }

    #[test]
    fn different_keys_differ() {
        let x = IpAnonymizer::new(b"k1");
        let y = IpAnonymizer::new(b"k2");
        // Over several addresses at least one must map differently.
        let samples = ["10.1.2.3", "192.0.2.77", "66.253.160.67"];
        assert!(samples
            .iter()
            .any(|s| x.anonymize(addr(s)) != y.anonymize(addr(s))));
    }

    #[test]
    fn preserves_shared_prefix_lengths_exactly() {
        let x = IpAnonymizer::new(b"key");
        let pairs = [
            ("10.0.0.1", "10.0.0.2"),       // share /30
            ("10.0.0.1", "10.0.1.1"),       // share /23
            ("10.0.0.1", "11.0.0.1"),       // share /7
            ("66.253.32.85", "66.253.32.86"), // the Fig. 2 /30
        ];
        for (s1, s2) in pairs {
            let (a, b) = (addr(s1), addr(s2));
            let expect = shared_prefix_len(a, b);
            let got = shared_prefix_len(x.anonymize(a), x.anonymize(b));
            assert_eq!(got, expect, "{s1} vs {s2}");
        }
    }

    #[test]
    fn is_injective_on_a_sample() {
        let x = IpAnonymizer::new(b"key");
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u32 {
            let a = Addr::from_u32(i * 8_388_608 + i); // spread across space
            assert!(seen.insert(x.anonymize(a)), "collision for {a}");
        }
    }
}
