//! Structure-preserving anonymization of router configurations.
//!
//! Reimplements the methodology of Section 4.1 of the paper (and of the
//! companion tech report CMU-CS-04-149): configuration files can be shared
//! with researchers only if everything identifying is removed, while
//! everything *structural* — the raw mechanism the routing-design analyses
//! consume — is preserved. Concretely:
//!
//! - Comments are stripped (the stanza lexer already drops them).
//! - Non-numeric tokens that are not known IOS keywords (hostnames,
//!   route-map names, descriptions) are replaced by deterministic hashes,
//!   à la the paper's SHA-1 digests of every word not found in the Cisco
//!   command reference. See [`Anonymizer::hash_token`].
//! - IP addresses are mapped by a *prefix-preserving*, keyed permutation
//!   (the tcpdpriv/Crypto-PAn construction): two addresses sharing their
//!   first `k` bits map to addresses sharing their first `k` bits, so
//!   subnet matching — and therefore every analysis in this repository —
//!   is invariant under anonymization. See [`Anonymizer::anon_addr`].
//! - Netmasks and wildcard masks are left alone (they carry structure, not
//!   identity), as are small plain integers (ACL numbers, process ids,
//!   metrics, areas).
//! - Public AS numbers are hashed into the public range; private ASNs
//!   (64512–65534) are preserved, exactly as the paper does.
//!
//! The SHA-1 implementation is from scratch per RFC 3174 (the reference the
//! paper cites); see [`sha1`]. It is used here as a deterministic PRF for
//! anonymization, not for any security purpose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ipanon;
mod sha1;
mod tokens;

pub use ipanon::IpAnonymizer;
pub use sha1::sha1;

use netaddr::Addr;

/// A keyed, deterministic configuration anonymizer.
///
/// All mappings are functions of the key, so anonymizing the files of one
/// network with one `Anonymizer` keeps cross-file references (neighbor
/// addresses, shared route-map names) consistent — the property the whole
/// reverse-engineering pipeline depends on.
pub struct Anonymizer {
    key: Vec<u8>,
    ip: IpAnonymizer,
}

impl Anonymizer {
    /// Creates an anonymizer from a secret key.
    pub fn new(key: &[u8]) -> Anonymizer {
        Anonymizer { key: key.to_vec(), ip: IpAnonymizer::new(key) }
    }

    /// Keyed PRF: SHA-1 over `key ‖ domain ‖ data`.
    fn prf(&self, domain: &str, data: &[u8]) -> [u8; 20] {
        let mut input = self.key.clone();
        input.extend_from_slice(domain.as_bytes());
        input.push(0);
        input.extend_from_slice(data);
        sha1(&input)
    }

    /// Hashes a free-form token into a fixed-width base-62 name like
    /// `8aTzlvBrbaW` (the shape of the anonymized names in the paper's
    /// Figure 2).
    pub fn hash_token(&self, token: &str) -> String {
        let digest = self.prf("token", token.as_bytes());
        // 11 base-62 characters from the first 8 bytes, first forced
        // alphabetic so the result can never be mistaken for a number.
        const ALPHABET: &[u8; 62] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let mut value = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
        let mut out = Vec::with_capacity(11);
        out.push(ALPHABET[(value % 52) as usize]); // letters only
        value /= 52;
        for _ in 0..10 {
            out.push(ALPHABET[(value % 62) as usize]);
            value /= 62;
        }
        String::from_utf8(out).expect("alphabet is ASCII")
    }

    /// Prefix-preserving address anonymization.
    pub fn anon_addr(&self, addr: Addr) -> Addr {
        self.ip.anonymize(addr)
    }

    /// Anonymizes an AS number: private-range ASNs (64512–65534) pass
    /// through; public ASNs map deterministically into 1..64512.
    pub fn anon_asn(&self, asn: u32) -> u32 {
        if (64512..=65535).contains(&asn) {
            return asn;
        }
        let digest = self.prf("asn", &asn.to_be_bytes());
        let raw = u32::from_be_bytes(digest[..4].try_into().expect("4 bytes"));
        1 + raw % 64511
    }

    /// Anonymizes one configuration file, preserving structure.
    pub fn anonymize_config(&self, text: &str) -> String {
        tokens::anonymize_text(self, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon() -> Anonymizer {
        Anonymizer::new(b"test-key")
    }

    #[test]
    fn token_hash_is_deterministic_and_name_shaped() {
        let a = anon();
        let h1 = a.hash_token("my-route-map");
        let h2 = a.hash_token("my-route-map");
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), 11);
        assert!(h1.chars().next().unwrap().is_ascii_alphabetic());
        assert_ne!(h1, a.hash_token("other-map"));
        // A different key gives a different mapping.
        let b = Anonymizer::new(b"other-key");
        assert_ne!(h1, b.hash_token("my-route-map"));
    }

    #[test]
    fn asn_private_range_preserved_public_hashed() {
        let a = anon();
        assert_eq!(a.anon_asn(64512), 64512);
        assert_eq!(a.anon_asn(65001), 65001);
        let mapped = a.anon_asn(7018);
        assert_ne!(mapped, 7018);
        assert!((1..64512).contains(&mapped));
        assert_eq!(mapped, a.anon_asn(7018));
    }
}
