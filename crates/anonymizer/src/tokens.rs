//! Text-level anonymization: token classification and rewriting.
//!
//! Mirrors the paper's regex/wordlist strategy: every whitespace-separated
//! token of every command line is classified as (a) a known IOS keyword —
//! kept, (b) a plain integer — kept, except AS numbers which are remapped,
//! (c) a dotted-quad — kept if it is a netmask/wildcard, prefix-preservingly
//! anonymized if it is an address, (d) an interface name — kept (hardware
//! labels carry structure, not identity), or (e) anything else — hashed.

use netaddr::{Addr, Netmask, Wildcard};

use crate::Anonymizer;

/// Anonymizes a whole configuration text, line by line.
pub fn anonymize_text(anon: &Anonymizer, text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for raw_line in text.lines() {
        let trimmed = raw_line.trim_end();
        let content = trimmed.trim_start();
        // Comments are dropped entirely; bare separators are kept.
        if content.starts_with('!') {
            out.push_str("!\n");
            continue;
        }
        if content.is_empty() {
            out.push('\n');
            continue;
        }
        let indent = &trimmed[..trimmed.len() - content.len()];
        out.push_str(indent);
        out.push_str(&anonymize_line(anon, content));
        out.push('\n');
    }
    out
}

/// Anonymizes one command line.
fn anonymize_line(anon: &Anonymizer, line: &str) -> String {
    let words: Vec<&str> = line.split_whitespace().collect();

    // Free-text commands: hash the entire remainder as one token so word
    // counts cannot leak phrasing.
    for (head, skip) in [("description", 1), ("banner", 1), ("hostname", 1)] {
        if words.first().is_some_and(|w| w.eq_ignore_ascii_case(head)) && words.len() > skip {
            let rest = words[skip..].join(" ");
            return format!("{} {}", words[0], anon.hash_token(&rest));
        }
    }
    // `neighbor <ip> description ...`
    if words.len() > 3
        && words[0].eq_ignore_ascii_case("neighbor")
        && words[2].eq_ignore_ascii_case("description")
    {
        let ip = anonymize_word(anon, &words, 1);
        let rest = words[3..].join(" ");
        return format!("neighbor {ip} description {}", anon.hash_token(&rest));
    }

    let mut out: Vec<String> = Vec::with_capacity(words.len());
    for idx in 0..words.len() {
        out.push(anonymize_word(anon, &words, idx));
    }
    out.join(" ")
}

/// True when the token at `idx` sits in an AS-number position.
fn is_asn_position(words: &[&str], idx: usize) -> bool {
    if idx == 0 {
        return false;
    }
    let prev = words[idx - 1].to_ascii_lowercase();
    if prev == "remote-as" {
        return true;
    }
    if idx >= 2 {
        let prev2 = words[idx - 2].to_ascii_lowercase();
        if (prev2 == "router" || prev2 == "redistribute") && prev == "bgp" {
            return true;
        }
    }
    false
}

/// True if the dotted quad at `idx` is a mask rather than an address:
/// either a contiguous netmask, or a contiguous wildcard appearing right
/// after another dotted quad (the `A W` position of `network`/ACL syntax).
fn is_mask_position(words: &[&str], idx: usize, token: &str) -> bool {
    if token.parse::<Netmask>().is_ok() {
        // Contiguous netmask shape, e.g. 255.255.255.252 or 0.0.0.0.
        // Addresses never look like this in practice (network numbers have
        // interior zero bits), and our generator never assigns one.
        return true;
    }
    if let Ok(w) = token.parse::<Wildcard>() {
        if w.is_contiguous() && idx > 0 && words[idx - 1].parse::<Addr>().is_ok() {
            return true;
        }
    }
    false
}

fn anonymize_word(anon: &Anonymizer, words: &[&str], idx: usize) -> String {
    let token = words[idx];

    // Plain integers: AS numbers are remapped, everything else passes.
    if token.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(n) = token.parse::<u32>() {
            if is_asn_position(words, idx) {
                return anon.anon_asn(n).to_string();
            }
        }
        return token.to_string();
    }

    // Dotted quads: masks pass, addresses are anonymized.
    if let Ok(addr) = token.parse::<Addr>() {
        if is_mask_position(words, idx, token) {
            return token.to_string();
        }
        return anon.anon_addr(addr).to_string();
    }

    // Known command keywords pass.
    if ioscfg::is_keyword(token) {
        return token.to_string();
    }

    // Interface names pass (type + unit designator).
    if let Ok(name) = token.parse::<ioscfg::InterfaceName>() {
        if !matches!(name.ty, ioscfg::InterfaceType::Other(_)) && !name.unit.is_empty() {
            return token.to_string();
        }
    }

    // Everything else is user data.
    anon.hash_token(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon() -> Anonymizer {
        Anonymizer::new(b"unit-test")
    }

    #[test]
    fn masks_and_keywords_survive() {
        let a = anon();
        let out = anonymize_line(&a, "ip address 66.251.75.144 255.255.255.128");
        let words: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(words[0], "ip");
        assert_eq!(words[1], "address");
        assert_ne!(words[2], "66.251.75.144");
        assert!(words[2].parse::<Addr>().is_ok());
        assert_eq!(words[3], "255.255.255.128");
    }

    #[test]
    fn wildcards_after_addresses_survive() {
        let a = anon();
        let out = anonymize_line(&a, "network 66.251.75.128 0.0.0.127 area 0");
        let words: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(words[2], "0.0.0.127");
        assert_eq!(words[3], "area");
        assert_eq!(words[4], "0");
    }

    #[test]
    fn route_map_names_are_hashed_consistently() {
        let a = anon();
        let l1 = anonymize_line(&a, "redistribute ospf 64 route-map corp-policy");
        let l2 = anonymize_line(&a, "route-map corp-policy deny 10");
        let h1 = l1.split_whitespace().last().unwrap().to_string();
        let h2 = l2.split_whitespace().nth(1).unwrap().to_string();
        assert_eq!(h1, h2);
        assert_ne!(h1, "corp-policy");
        // OSPF pid and sequence numbers are untouched.
        assert!(l1.contains(" 64 "));
        assert!(l2.ends_with("deny 10"));
    }

    #[test]
    fn asn_positions_are_remapped() {
        let a = anon();
        let out = anonymize_line(&a, "router bgp 7018");
        assert_ne!(out, "router bgp 7018");
        let mapped: u32 = out.split_whitespace().last().unwrap().parse().unwrap();
        assert_eq!(mapped, a.anon_asn(7018));
        // remote-as uses the same mapping, so the peering stays consistent.
        let out2 = anonymize_line(&a, "neighbor 10.0.0.1 remote-as 7018");
        assert!(out2.ends_with(&mapped.to_string()));
        // Private ASNs pass through.
        assert_eq!(anonymize_line(&a, "router bgp 65001"), "router bgp 65001");
    }

    #[test]
    fn interface_names_survive() {
        let a = anon();
        assert_eq!(
            anonymize_line(&a, "distribute-list 44 in Serial1/0.5"),
            "distribute-list 44 in Serial1/0.5"
        );
        assert_eq!(
            anonymize_line(&a, "interface Hssi2/0 point-to-point"),
            "interface Hssi2/0 point-to-point"
        );
    }

    #[test]
    fn descriptions_and_hostnames_are_hashed_whole() {
        let a = anon();
        let out = anonymize_line(&a, "description link to Chicago POP router 7");
        assert_eq!(out.split_whitespace().count(), 2);
        let out = anonymize_line(&a, "hostname chicago-core-1");
        assert!(out.starts_with("hostname "));
        assert!(!out.contains("chicago"));
    }

    #[test]
    fn comments_are_dropped_structure_kept() {
        let a = anon();
        let text = "! built by ops team 2003-05-07\nhostname secret\n!\n";
        let out = anonymize_text(&a, text);
        assert!(!out.contains("ops team"));
        assert_eq!(out.lines().count(), 3);
        assert_eq!(out.lines().next().unwrap(), "!");
    }

    #[test]
    fn indentation_is_preserved() {
        let a = anon();
        let out = anonymize_text(&a, "interface Ethernet0\n ip address 10.0.0.1 255.0.0.0\n");
        let second = out.lines().nth(1).unwrap();
        assert!(second.starts_with(' '));
        assert!(!second.starts_with("  "));
    }
}
