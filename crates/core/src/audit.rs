//! Vulnerability assessment (paper Section 8.1).
//!
//! "The operator can identify connections to neighboring domains that do
//! not have packet or route filters, or internal links and routers with
//! incomplete routing protocol adjacencies." This module walks the
//! analyzed design and reports exactly those findings.

use std::fmt;

use nettopo::{IfaceClass, IfaceRef};

use crate::NetworkAnalysis;

/// The kind of an audit finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// An external-facing interface with no inbound packet filter.
    UnfilteredExternalInterface,
    /// An EBGP session to an external peer with neither a route map nor a
    /// distribute list in the inbound direction.
    UnfilteredExternalSession,
    /// An internal link where one side runs a routing process covering
    /// the link but the other side does not — an incomplete adjacency
    /// (often a provisioning leftover).
    IncompleteAdjacency,
    /// A router whose failure alone disconnects part of the network.
    SinglePointOfFailure,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::UnfilteredExternalInterface => "unfiltered external interface",
            FindingKind::UnfilteredExternalSession => "unfiltered external BGP session",
            FindingKind::IncompleteAdjacency => "incomplete routing adjacency",
            FindingKind::SinglePointOfFailure => "single point of failure",
        };
        f.write_str(s)
    }
}

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The kind.
    pub kind: FindingKind,
    /// Human-readable location and detail.
    pub detail: String,
}

/// Audits a network's design for the Section 8.1 vulnerability classes.
pub fn audit(a: &NetworkAnalysis) -> Vec<Finding> {
    let mut findings = Vec::new();

    // 1. External-facing interfaces without inbound packet filters.
    for (iref, class) in a.external.classes.iter() {
        if class != IfaceClass::External {
            continue;
        }
        let router = a.network.router(iref.router);
        let iface = &router.config.interfaces[iref.iface];
        if iface.access_group_in.is_none() {
            findings.push(Finding {
                kind: FindingKind::UnfilteredExternalInterface,
                detail: format!("{} {}", router.name(), iface.name),
            });
        }
    }

    // 2. External EBGP sessions with no inbound route policy.
    for s in &a.adjacencies.bgp {
        if s.scope != routing_model::SessionScope::EbgpExternal {
            continue;
        }
        let router = a.network.router(s.local.router);
        let Some(bgp) = &router.config.bgp else { continue };
        let Some(n) = bgp.neighbors.iter().find(|n| n.addr == s.peer_addr) else {
            continue;
        };
        if n.route_map_in.is_none() && n.distribute_in.is_none() {
            findings.push(Finding {
                kind: FindingKind::UnfilteredExternalSession,
                detail: format!(
                    "{} neighbor {} (AS{})",
                    router.name(),
                    s.peer_addr,
                    s.remote_as
                ),
            });
        }
    }

    // 3. Incomplete adjacencies: an internal link where exactly one side
    //    actively covers the link with an IGP process.
    for link in a.links.internal_links() {
        let mut covering = 0usize;
        let mut total_sides = 0usize;
        for endpoint in &link.endpoints {
            total_sides += 1;
            let covers = a
                .processes
                .on_router(endpoint.router)
                .any(|p| p.key.proto.kind().is_igp() && p.active_on(endpoint.iface));
            if covers {
                covering += 1;
            }
        }
        if covering >= 1 && covering < total_sides {
            let lonely = link
                .endpoints
                .iter()
                .find(|e| {
                    !a.processes
                        .on_router(e.router)
                        .any(|p| p.key.proto.kind().is_igp() && p.active_on(e.iface))
                })
                // Invariant: covering < total_sides guarantees at least one
                // endpoint fails the same predicate counted above.
                .expect("some side does not cover");
            findings.push(Finding {
                kind: FindingKind::IncompleteAdjacency,
                detail: format!(
                    "{} does not speak the IGP active on {}",
                    describe(a, *lonely),
                    link.subnet
                ),
            });
        }
    }

    // 4. Articulation routers.
    let graph = nettopo::RouterGraph::build(&a.network, &a.links);
    for rid in graph.articulation_routers() {
        findings.push(Finding {
            kind: FindingKind::SinglePointOfFailure,
            detail: a.network.router(rid).name().to_string(),
        });
    }

    findings.sort_by(|x, y| x.kind.cmp(&y.kind).then_with(|| x.detail.cmp(&y.detail)));
    findings
}

fn describe(a: &NetworkAnalysis, iref: IfaceRef) -> String {
    let router = a.network.router(iref.router);
    format!("{} {}", router.name(), router.config.interfaces[iref.iface].name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfiltered_border_flagged() {
        let a = NetworkAnalysis::from_texts(vec![(
            "config1".to_string(),
            "hostname border\n\
             interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                .to_string(),
        )])
        .unwrap();
        let findings = audit(&a);
        let kinds: Vec<FindingKind> = findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::UnfilteredExternalInterface), "{findings:?}");
        assert!(kinds.contains(&FindingKind::UnfilteredExternalSession), "{findings:?}");
    }

    #[test]
    fn filtered_border_not_flagged() {
        let a = NetworkAnalysis::from_texts(vec![(
            "config1".to_string(),
            "hostname border\n\
             interface Serial0\n ip address 192.0.2.1 255.255.255.252\n ip access-group 120 in\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n \
              neighbor 192.0.2.2 route-map guard in\n\
             access-list 120 permit ip any any\n\
             route-map guard permit 10\n"
                .to_string(),
        )])
        .unwrap();
        let findings = audit(&a);
        assert!(
            !findings
                .iter()
                .any(|f| matches!(
                    f.kind,
                    FindingKind::UnfilteredExternalInterface
                        | FindingKind::UnfilteredExternalSession
                )),
            "{findings:?}"
        );
    }

    #[test]
    fn incomplete_adjacency_flagged() {
        // Both ends in the corpus, but only one runs OSPF on the link.
        let a = NetworkAnalysis::from_texts(vec![
            (
                "config1".to_string(),
                "hostname speaks\n\
                 interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .to_string(),
            ),
            (
                "config2".to_string(),
                "hostname silent\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
                    .to_string(),
            ),
        ])
        .unwrap();
        let findings = audit(&a);
        let inc: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::IncompleteAdjacency)
            .collect();
        assert_eq!(inc.len(), 1, "{findings:?}");
        assert!(inc[0].detail.contains("silent"));
    }

    #[test]
    fn articulation_router_flagged() {
        // A 3-router path: the middle router is a single point of failure.
        let a = NetworkAnalysis::from_texts(vec![
            (
                "config1".to_string(),
                "hostname left\ninterface Serial0\n ip address 10.0.0.1 255.255.255.252\n".to_string(),
            ),
            (
                "config2".to_string(),
                "hostname middle\ninterface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.5 255.255.255.252\n"
                    .to_string(),
            ),
            (
                "config3".to_string(),
                "hostname right\ninterface Serial0\n ip address 10.0.0.6 255.255.255.252\n".to_string(),
            ),
        ])
        .unwrap();
        let findings = audit(&a);
        let spof: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::SinglePointOfFailure)
            .collect();
        assert_eq!(spof.len(), 1);
        assert_eq!(spof[0].detail, "middle");
    }
}
