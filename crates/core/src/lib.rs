//! Reverse engineering of routing designs from router configurations —
//! a from-scratch reproduction of *Routing Design in Operational
//! Networks: A Look from the Inside* (SIGCOMM 2004).
//!
//! This crate is the public face of the toolchain: point it at a directory
//! of Cisco-IOS-style configuration files (or in-memory texts) and it
//! derives the paper's four abstractions plus every aggregate analysis:
//!
//! ```
//! use routing_design::NetworkAnalysis;
//!
//! let configs = vec![
//!     ("config1".to_string(), "\
//! hostname border
//! interface Serial0
//!  ip address 192.0.2.1 255.255.255.252
//! interface Serial1
//!  ip address 10.0.0.1 255.255.255.252
//! router ospf 1
//!  network 10.0.0.0 0.0.255.255 area 0
//!  redistribute bgp 65001 subnets
//! router bgp 65001
//!  neighbor 192.0.2.2 remote-as 7018
//! ".to_string()),
//!     ("config2".to_string(), "\
//! hostname core
//! interface Serial0
//!  ip address 10.0.0.2 255.255.255.252
//! router ospf 1
//!  network 10.0.0.0 0.0.255.255 area 0
//! ".to_string()),
//! ];
//! let analysis = NetworkAnalysis::from_texts(configs).unwrap();
//! assert_eq!(analysis.instances.len(), 2); // one OSPF + one BGP instance
//! assert_eq!(
//!     analysis.design.class,
//!     routing_design::DesignClass::Enterprise
//! );
//! ```
//!
//! The [`report`] module renders the paper's tables and figures
//! (Table 1/2/3, Figures 4/8/11, the Section 7 classification) from one
//! or many analyzed networks; the `netgen` crate regenerates the paper's
//! 31-network population to feed them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod diff;
pub mod incremental;
pub mod plan;
pub mod report;
pub mod snapshot;
pub mod watch;

use std::path::Path;

pub use ioscfg::{parse_config, RouterConfig};
pub use netaddr::{Addr, BlockTree, Prefix, PrefixSet};
pub use nettopo::{
    error_budget, Coverage, ExternalAnalysis, IfaceClass, LinkMap, LoadError, Network,
    Router, RouterGraph, RouterId,
};
pub use audit::{audit, Finding, FindingKind};
pub use diff::DesignDiff;
pub use reachability::{ReachAnalysis, RouteFilter, TaggedRoutes};
pub use routing_model::{
    classify_network, AreaStructure, Adjacencies, DesignClass, DesignSummary,
    IbgpMesh, InstanceGraph, InstanceId, InstanceNode, Instances, PathwayGraph,
    ProcKey, Processes, Proto, ProtoKind, ProcessGraph, SessionScope, Table1,
};
pub use rd_obs::{Diagnostic, Diagnostics, Severity};
pub use rd_par::{StageTimings, Stopwatch};

/// The complete static analysis of one network: every abstraction the
/// paper derives, computed in dependency order from the parsed configs.
pub struct NetworkAnalysis {
    /// The parsed configurations.
    pub network: Network,
    /// Inferred logical links (Section 2.1).
    pub links: LinkMap,
    /// Internal/external classification (Section 5.2).
    pub external: ExternalAnalysis,
    /// Routing processes.
    pub processes: Processes,
    /// IGP adjacencies and BGP sessions (Section 2.2).
    pub adjacencies: Adjacencies,
    /// Routing instances (Section 3.2).
    pub instances: Instances,
    /// The routing instance graph.
    pub instance_graph: InstanceGraph,
    /// The routing process graph (Section 3.1).
    pub process_graph: ProcessGraph,
    /// Recovered address-space structure (Section 3.4).
    pub blocks: BlockTree,
    /// Intra/inter role counts (Table 1).
    pub table1: Table1,
    /// Design classification (Section 7).
    pub design: DesignSummary,
    /// Everything the pipeline could not vouch for, end to end: parse
    /// diagnostics (unknown stanzas, dangling policy references), topology
    /// hints (possible missing routers), and design smells (inert
    /// redistribution, missing backbone area, neighborless BGP). See
    /// `rdx <dir> diag`.
    pub diagnostics: Diagnostics,
    /// Wall-clock time of every pipeline stage of this analysis (and of
    /// the parse, when loaded through [`from_texts`] or [`from_dir`]).
    /// See `rdx --timings` and `repro --bench`.
    pub timings: StageTimings,
    /// Raw-byte FNV-1a-64 hash of every input config file, in input
    /// order — what the [`incremental`] delta engine compares to decide
    /// whether this analysis is still current. Populated by the
    /// byte-level loaders ([`from_bytes_list`], [`from_dir`],
    /// [`from_texts`]); empty when built from an already-parsed
    /// [`Network`] whose raw bytes never existed.
    ///
    /// [`from_bytes_list`]: NetworkAnalysis::from_bytes_list
    /// [`from_dir`]: NetworkAnalysis::from_dir
    /// [`from_texts`]: NetworkAnalysis::from_texts
    pub file_hashes: Vec<(String, u64)>,
}

impl NetworkAnalysis {
    /// Analyzes a network already parsed into a [`Network`].
    pub fn from_network(network: Network) -> NetworkAnalysis {
        let _span = rd_obs::trace::span(
            "analyze",
            &[("routers", network.len().into())],
        );
        // Each stage runs under a profile span sharing the stage-timing
        // name, so a folded profile's root stacks are exactly the
        // StageTimings vocabulary.
        let mut sw = Stopwatch::start();
        let links = sw.stage("links", || LinkMap::build(&network));
        let external = sw.stage("external", || ExternalAnalysis::build(&network, &links));
        let processes = sw.stage("processes", || Processes::extract(&network));
        let adjacencies =
            sw.stage("adjacencies", || Adjacencies::build(&network, &links, &processes, &external));
        let instances = sw.stage("instances", || Instances::compute(&processes, &adjacencies));
        let (instance_graph, process_graph) = sw.stage("graphs", || {
            (
                InstanceGraph::build(&network, &processes, &adjacencies, &instances),
                ProcessGraph::build(&network, &processes, &adjacencies),
            )
        });
        let blocks = sw.stage("blocks", || network.address_blocks());
        let (table1, design) = sw.stage("classify", || {
            let table1 = Table1::compute(&instances, &instance_graph, &adjacencies);
            let design =
                classify_network(&network, &instances, &instance_graph, &adjacencies, &table1);
            (table1, design)
        });

        // Fold the whole pipeline's diagnostics into one channel: parse
        // level, then topology hints, then design smells.
        let diagnostics = sw.stage("diagnose", || {
            let mut diagnostics = network.diagnostics.clone();
            for hint in &external.missing_router_hints {
                let router = network.router(hint.iface.router);
                diagnostics.push(Diagnostic {
                    file: router.file_name.clone(),
                    line: 0,
                    severity: Severity::Warning,
                    code: "possible-missing-router",
                    message: format!(
                        "interface {} ({}) is external-facing inside internal block {} — \
                         a router configuration may be missing from the data set",
                        router.config.interfaces[hint.iface.iface].name,
                        hint.subnet,
                        hint.block,
                    ),
                });
            }
            diagnostics
                .extend(routing_model::design_diagnostics(&network, &processes, &instances));
            diagnostics
        });

        rd_obs::metrics::counter_add("instances.count", instances.len() as u64);
        rd_obs::metrics::counter_add("links.count", links.links.len() as u64);
        let (errors, warnings, _) = diagnostics.counts();
        rd_obs::metrics::counter_add("diag.errors", errors as u64);
        rd_obs::metrics::counter_add("diag.warnings", warnings as u64);
        rd_obs::metrics::record_peak_rss("analyze");
        rd_obs::trace::event(
            "analyze.done",
            &[
                ("routers", network.len().into()),
                ("instances", instances.len().into()),
                ("diagnostics", diagnostics.len().into()),
            ],
        );

        NetworkAnalysis {
            network,
            links,
            external,
            processes,
            adjacencies,
            instances,
            instance_graph,
            process_graph,
            blocks,
            table1,
            design,
            diagnostics,
            timings: sw.finish(),
            file_hashes: Vec::new(),
        }
    }

    /// Parses and analyzes `(file_name, text)` pairs. The parse itself is
    /// recorded as the `"parse"` stage in [`timings`](NetworkAnalysis::timings).
    pub fn from_texts<I>(texts: I) -> Result<NetworkAnalysis, LoadError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        Ok(NetworkAnalysis::from_bytes_list(
            texts.into_iter().map(|(name, text)| (name, text.into_bytes())).collect(),
        ))
    }

    /// Parses and analyzes `(file_name, bytes)` pairs. Unlike
    /// [`from_texts`](NetworkAnalysis::from_texts) this path is infallible:
    /// unreadable files (non-UTF-8, empty, unparseable) are quarantined into
    /// per-file error diagnostics and recorded in the network's
    /// [`Coverage`](nettopo::Coverage), and the analysis proceeds with the
    /// surviving routers.
    pub fn from_bytes_list(files: Vec<(String, Vec<u8>)>) -> NetworkAnalysis {
        let started = std::time::Instant::now();
        let file_hashes: Vec<(String, u64)> = files
            .iter()
            .map(|(name, bytes)| (name.clone(), rd_snap::fnv1a64(bytes)))
            .collect();
        let network = {
            let _span = rd_obs::span!("parse");
            Network::from_bytes_list(files)
        };
        let parse_time = started.elapsed();
        rd_obs::metrics::record_peak_rss("parse");
        let mut analysis = NetworkAnalysis::from_network(network);
        analysis.timings.prepend("parse", parse_time);
        analysis.file_hashes = file_hashes;
        analysis
    }

    /// True when at least one input file was quarantined during parsing,
    /// i.e. the analysis covers only a subset of the corpus.
    pub fn degraded(&self) -> bool {
        self.network.coverage.degraded()
    }

    /// Loads and analyzes a directory of configuration files. Parsing is
    /// recorded as the `"parse"` stage.
    pub fn from_dir(dir: &Path) -> Result<NetworkAnalysis, LoadError> {
        Ok(NetworkAnalysis::from_bytes_list(read_dir_files(dir)?))
    }

    /// The route pathway graph for one router (Section 3.3).
    pub fn pathway(&self, router: RouterId) -> PathwayGraph {
        PathwayGraph::trace(router, &self.instances, &self.instance_graph)
    }

    /// IBGP mesh structure of every BGP instance (Section 7.1's
    /// "completeness of the IBGP mesh" dimension).
    pub fn ibgp_meshes(&self) -> Vec<IbgpMesh> {
        routing_model::ibgp_meshes(&self.network, &self.instances, &self.adjacencies)
    }

    /// OSPF area structure of every OSPF instance.
    pub fn area_structures(&self) -> Vec<AreaStructure> {
        routing_model::area_structures(&self.network, &self.processes, &self.instances)
    }

    /// Destination prefixes that several routers point static routes at —
    /// the Section 8.1 maintenance-planning concern ("avoid disabling
    /// multiple routers with static routes to the same destination
    /// prefix").
    pub fn shared_static_destinations(&self) -> Vec<(Prefix, Vec<RouterId>)> {
        let mut by_dest: std::collections::BTreeMap<Prefix, Vec<RouterId>> =
            Default::default();
        for (rid, router) in self.network.iter() {
            let mut seen: std::collections::BTreeSet<Prefix> = Default::default();
            for sr in &router.config.static_routes {
                if seen.insert(sr.prefix()) {
                    by_dest.entry(sr.prefix()).or_default().push(rid);
                }
            }
        }
        by_dest.retain(|_, routers| routers.len() > 1);
        by_dest.into_iter().collect()
    }

    /// A reachability analysis over this network (Section 6.2).
    pub fn reachability(&self) -> ReachAnalysis<'_> {
        ReachAnalysis::new(&self.network, &self.processes, &self.adjacencies, &self.instances)
    }

    /// Minimum routers whose failure separates two instances (the net5
    /// question from Section 5.1), or `None` if they cannot be separated.
    pub fn instance_separation(&self, a: InstanceId, b: InstanceId) -> Option<usize> {
        let graph = RouterGraph::build(&self.network, &self.links);
        let sources = self.instances.get(a).routers.iter().copied().collect();
        let sinks = self.instances.get(b).routers.iter().copied().collect();
        graph.min_router_cut(&sources, &sinks)
    }

    /// DOT rendering of the instance graph (Figure 6/9 style).
    pub fn instance_graph_dot(&self) -> String {
        routing_model::render::instance_graph_dot(&self.instances, &self.instance_graph)
    }

    /// Text rendering of the instance graph.
    pub fn instance_graph_text(&self) -> String {
        routing_model::render::instance_graph_text(&self.instances, &self.instance_graph)
    }

    /// DOT rendering of the process graph (Figure 5 style).
    pub fn process_graph_dot(&self) -> String {
        routing_model::render::process_graph_dot(&self.network, &self.process_graph)
    }

    /// Text rendering of a router's pathway graph (Figure 7/10 style).
    pub fn pathway_text(&self, router: RouterId) -> String {
        routing_model::render::pathway_text(&self.pathway(router), &self.instances)
    }
}

/// Reads every plain file in `dir` as raw bytes, in file-name order —
/// the exact input [`Network::from_dir`] feeds to the parser, factored
/// out so the [`incremental`] engine reads through the same path.
pub(crate) fn read_dir_files(dir: &Path) -> Result<Vec<(String, Vec<u8>)>, LoadError> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .map_err(LoadError::Io)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .map(|e| e.path())
        .collect();
    names.sort();
    let mut files = Vec::with_capacity(names.len());
    for path in names {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        files.push((name, std::fs::read(&path).map_err(LoadError::Io)?));
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enterprise_texts() -> Vec<(String, String)> {
        vec![
            (
                "config1".to_string(),
                "hostname border\n\
                 interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  redistribute bgp 65001 subnets\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                    .to_string(),
            ),
            (
                "config2".to_string(),
                "hostname core\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .to_string(),
            ),
        ]
    }

    #[test]
    fn full_pipeline_smoke() {
        let a = NetworkAnalysis::from_texts(enterprise_texts()).unwrap();
        assert_eq!(a.network.len(), 2);
        assert_eq!(a.instances.len(), 2);
        assert_eq!(a.design.class, DesignClass::Enterprise);
        assert!(a.instance_graph_dot().contains("AS7018"));
        assert!(a.process_graph_dot().contains("digraph"));
        assert!(a.pathway_text(RouterId(1)).contains("Router RIB"));
        assert!(!a.blocks.is_empty());
    }

    #[test]
    fn instance_separation_simple() {
        // border is the only path between the OSPF instance and the BGP
        // instance — but they share the border router, so separation is
        // impossible (None).
        let a = NetworkAnalysis::from_texts(enterprise_texts()).unwrap();
        let ospf = a.instances.list.iter().find(|i| i.asn.is_none()).unwrap().id;
        let bgp = a.instances.list.iter().find(|i| i.asn.is_some()).unwrap().id;
        assert_eq!(a.instance_separation(ospf, bgp), None);
    }

    #[test]
    fn reachability_accessor_works() {
        let a = NetworkAnalysis::from_texts(enterprise_texts()).unwrap();
        let reach = a.reachability();
        // Unfiltered upstream: the default route can enter.
        let ospf = a.instances.list.iter().find(|i| i.asn.is_none()).unwrap().id;
        let external = reach.external_routes_entering(ospf);
        assert!(external.covers_prefix(Prefix::DEFAULT));
    }
}
