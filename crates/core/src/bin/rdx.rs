//! `rdx` — routing design explorer.
//!
//! The operator-facing front end of the toolchain: point it at a directory
//! of router configuration files and interrogate the network's routing
//! design, exactly the workflow the paper's Section 8.1 sketches for
//! inventory management, vulnerability assessment, and diagnosis.
//!
//! ```text
//! rdx <config-dir> summary                     overview + classification
//! rdx <config-dir> instances                   the routing instance graph
//! rdx <config-dir> pathway <router>            route pathway of one router
//! rdx <config-dir> dot [process|instances]     Graphviz output
//! rdx <config-dir> roles                       Table-1 style role counts
//! rdx <config-dir> blocks                      recovered address blocks
//! rdx <config-dir> external                    external-facing interfaces
//! rdx <config-dir> reach <src-prefix> <dst-prefix>   block reachability
//! rdx <config-dir> flow <src> <dst> [proto] [port]   packet-filter verdicts
//! rdx <config-dir> separation <inst-a> <inst-b>      min router cut
//! rdx <config-dir> whatif <router> [...]             failure simulation
//! rdx <config-dir> audit                       §8.1 vulnerability findings
//! rdx <config-dir> diag                        pipeline diagnostics
//! rdx <config-dir> diff <other-dir>            design changes between snapshots
//! rdx <config-dir> plan <target-dir>           safe reconfiguration plan
//! rdx <config-dir> anonymize <out-dir> <key>   anonymize the corpus
//! rdx snap <dir> -o study.rdsnap               snapshot a corpus's analysis
//! rdx serve study.rdsnap --addr 127.0.0.1:0    serve a snapshot over HTTP
//! ```
//!
//! `<router>` accepts `rN`, a file name, or a hostname.
//!
//! Exit codes are consistent across commands: `0` success, `1` analysis
//! or diagnostic errors (load failures, error-severity diagnostics from
//! `diag`, unknown routers/instances), `2` usage errors (unknown
//! commands/flags, missing or malformed arguments).
//!
//! Flags (anywhere on the line; anything else starting with `--` is a
//! usage error):
//!
//! - `--version` prints the tool version and exits.
//! - `--help` prints the full command/flag/exit-code reference.
//! - `--json` renders `summary` as JSON (the same body `rdx serve`
//!   answers for `/networks/{id}`).
//! - `--timings` prints per-stage wall-clock times of the analysis
//!   pipeline to stderr after the command's own output — **even when the
//!   command itself fails**, and on a load failure it still reports the
//!   time spent loading, so a slow failure is as diagnosable as a slow
//!   success. The parse stage honors the `RD_THREADS` worker-count
//!   override.
//! - `--metrics` dumps the `rd-obs` metrics registry (counters, gauges,
//!   histograms accumulated during the run) to stderr.
//! - `--trace <path>` (or `--trace=<path>`) writes the structured JSONL
//!   event stream to `path`; `--trace -` streams it to stderr. Without
//!   the flag, the `RD_TRACE` environment variable picks the sink.
//! - `--profile <path>` (or `--profile=<path>`) records hierarchical
//!   wall-clock spans across the pipeline and writes them as
//!   collapsed-stack lines (`stack;substack self_us`) for flamegraph
//!   tooling. Root stacks are the `--timings` stage names.
//!   `RD_PROF_ZERO=1` zeroes the counts for byte-exact comparisons.

use std::path::Path;
use std::process::ExitCode;

use routing_design::{NetworkAnalysis, Prefix, RouterId, Severity};

/// Flags recognized anywhere on the command line, split off before the
/// positional arguments. Unknown `--flags` are usage errors.
struct Flags {
    timings: bool,
    metrics: bool,
    json: bool,
    /// `plan` only: independently re-verify every emitted step.
    check: bool,
    /// `diff` only: print which networks the diff touches.
    networks: bool,
    trace: Option<String>,
    profile: Option<String>,
}

fn parse_flags(args: &mut Vec<String>) -> Result<Flags, String> {
    let mut flags = Flags {
        timings: false,
        metrics: false,
        json: false,
        check: false,
        networks: false,
        trace: None,
        profile: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = std::mem::take(args).into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timings" => flags.timings = true,
            "--metrics" => flags.metrics = true,
            "--json" => flags.json = true,
            "--check" => flags.check = true,
            "--networks" => flags.networks = true,
            "--trace" => match it.next() {
                Some(path) => flags.trace = Some(path),
                None => return Err("--trace needs a path (or '-')".to_string()),
            },
            "--profile" => match it.next() {
                Some(path) => flags.profile = Some(path),
                None => return Err("--profile needs an output path".to_string()),
            },
            other if other.starts_with("--trace=") => {
                flags.trace = Some(other["--trace=".len()..].to_string());
            }
            other if other.starts_with("--profile=") => {
                flags.profile = Some(other["--profile=".len()..].to_string());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            _ => rest.push(arg),
        }
    }
    *args = rest;
    Ok(flags)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("rdx {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", help_text());
        return ExitCode::SUCCESS;
    }
    // `snap`, `serve`, `watch`, and `chaos` own their argument parsing
    // (their flags, like `-o` and `--addr`, are not global flags).
    match args.first().map(String::as_str) {
        Some("snap") => return snap_cmd(&args[1..]),
        Some("serve") => return serve_cmd(&args[1..]),
        Some("watch") => return watch_cmd(&args[1..]),
        Some("chaos") => return chaos_cmd(&args[1..]),
        _ => {}
    }
    let flags = match parse_flags(&mut args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("rdx: {msg}");
            return usage();
        }
    };
    let sink_result = match &flags.trace {
        Some(path) if path == "-" || path == "stderr" => {
            rd_obs::trace::set_stderr_sink();
            Ok(())
        }
        Some(path) => rd_obs::trace::set_file_sink(path),
        None => rd_obs::trace::init_from_env(),
    };
    if let Err(e) = sink_result {
        eprintln!("rdx: cannot open trace sink: {e}");
        return ExitCode::FAILURE;
    }
    if flags.profile.is_some() {
        rd_obs::profile::enable();
    }

    let (dir, rest) = match args.split_first() {
        Some((dir, rest)) => (dir.clone(), rest.to_vec()),
        None => return usage(),
    };
    let command = rest.first().map(String::as_str).unwrap_or("summary");

    if command == "anonymize" {
        return anonymize(&dir, &rest[1..]);
    }

    // `plan` runs its own pair of analyses (current + target + every
    // intermediate state), so it bypasses the single up-front load.
    if command == "plan" {
        let code = plan_cmd(&dir, &rest[1..], &flags);
        rd_obs::trace::flush();
        write_profile(&flags);
        return code;
    }

    let load_started = std::time::Instant::now();
    let analysis = match NetworkAnalysis::from_dir(Path::new(&dir)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rdx: failed to load {dir}: {e}");
            if flags.timings {
                eprintln!(
                    "load failed after {:.3} ms ({} worker thread(s))",
                    load_started.elapsed().as_secs_f64() * 1e3,
                    rd_par::thread_count()
                );
            }
            rd_obs::trace::flush();
            write_profile(&flags);
            return ExitCode::FAILURE;
        }
    };

    let coverage = &analysis.network.coverage;
    if coverage.degraded() {
        eprintln!(
            "rdx: DEGRADED coverage: {}/{} config file(s) quarantined ({}); \
             analysis covers the surviving routers only",
            coverage.quarantined.len(),
            coverage.total_files,
            coverage.quarantined.join(", "),
        );
    }

    let code = run_command(&analysis, &dir, command, &rest, &flags);
    if flags.timings {
        eprintln!(
            "pipeline stage timings ({} routers, {} worker thread(s)):",
            analysis.network.len(),
            rd_par::thread_count()
        );
        eprint!("{}", analysis.timings);
    }
    if flags.metrics {
        eprint!("{}", rd_obs::metrics::dump());
    }
    rd_obs::trace::flush();
    write_profile(&flags);
    code
}

/// Writes the collapsed-stack profile when `--profile <path>` was given.
fn write_profile(flags: &Flags) {
    let Some(path) = &flags.profile else {
        return;
    };
    match rd_obs::profile::write_folded(path) {
        Ok(()) => eprintln!("profile: collapsed stacks written to {path}"),
        Err(e) => eprintln!("rdx: cannot write profile {path}: {e}"),
    }
}

fn run_command(
    analysis: &NetworkAnalysis,
    dir: &str,
    command: &str,
    rest: &[String],
    flags: &Flags,
) -> ExitCode {
    match command {
        "summary" if flags.json => {
            let name = network_name(dir);
            let snap = routing_design::snapshot::capture_ref(&name, analysis);
            print!("{}", rd_serve::render::network_summary(&snap));
        }
        "summary" => summary(analysis),
        "instances" => print!("{}", analysis.instance_graph_text()),
        "roles" => print!("{}", analysis.table1),
        "blocks" => blocks(analysis),
        "external" => external(analysis),
        "pathway" => return pathway(analysis, &rest[1..]),
        "dot" => return dot(analysis, &rest[1..]),
        "reach" => return reach(analysis, &rest[1..]),
        "flow" => return flow(analysis, &rest[1..]),
        "separation" => return separation(analysis, &rest[1..]),
        "whatif" => return whatif(analysis, &rest[1..]),
        "audit" => {
            let findings = routing_design::audit(analysis);
            if findings.is_empty() {
                println!("no findings");
            }
            for f in findings {
                println!("[{}] {}", f.kind, f.detail);
            }
        }
        "diag" => return diag(analysis),
        "diff" => return diff_cmd(analysis, dir, &rest[1..], flags),
        other => {
            eprintln!("rdx: unknown command {other:?}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rdx <config-dir> [summary|instances|roles|blocks|external|\
         pathway <router>|dot [process|instances]|reach <src> <dst>|\
         flow <src> <dst> [proto] [port]|separation <a> <b>|\
         whatif <router> [...]|audit|diag|diff <other-dir> [--networks]|\
         plan <target-dir> [--check]|\
         anonymize <out-dir> <key>] [--json] [--timings] [--metrics] [--trace <path>] \
         [--profile <path>]\n\
         \x20      rdx snap <dir> -o <file.rdsnap> [--from <prev.rdsnap>]\n\
         \x20      rdx snap --info <file.rdsnap>\n\
         \x20      rdx serve <file.rdsnap> [--addr HOST:PORT] [--workers N] [--max-conns N] [--no-cache] [--plan <plan.json>]\n\
         \x20      rdx watch <config-dir> [--addr HOST:PORT] [--snapshot <file.rdsnap>] [--poll-ms N] [--debounce-ms N]\n\
         \x20      rdx chaos <dir> [--seed N] [--configs M] [--snapshots K] [--max-rss-mb MB]\n\
         rdx --help shows the full reference (commands, flags, exit codes)"
    );
    ExitCode::from(2)
}

fn help_text() -> String {
    format!(
        "rdx {} — routing design explorer

usage:
  rdx <config-dir> [command] [flags]     analyze a config directory
  rdx snap <dir> -o <file.rdsnap> [--from <prev.rdsnap>]
                                         analyze once, write a snapshot;
                                         --from seeds the incremental
                                         delta engine from a previous
                                         snapshot so only changed
                                         networks are re-analyzed (the
                                         output stays byte-identical to
                                         a cold run)
  rdx snap --info <file.rdsnap>          print the snapshot's section/
                                         manifest table (per-network
                                         names, offsets, byte sizes)
                                         without decoding any payload
  rdx serve <file.rdsnap> [--addr HOST:PORT] [--workers N]
            [--max-conns N] [--no-cache] [--profile <path>]
                                         serve a snapshot over HTTP from an
                                         epoll event loop: --workers N sets
                                         the loop-thread count (0 = auto),
                                         --max-conns caps live connections
                                         (default 1024; past it, 503 +
                                         Retry-After), --no-cache disables
                                         the pre-rendered response cache
                                         (debug escape hatch; bodies are
                                         byte-identical either way),
                                         --profile writes the cache-build
                                         span profile on shutdown
  rdx watch <config-dir> [--addr HOST:PORT] [--snapshot <file.rdsnap>]
            [--poll-ms N] [--debounce-ms N] [--backoff-ms N]
            [--backoff-max-ms N] [--degraded-after N] [--seed N]
            [--workers N] [--max-conns N] [--no-cache]
                                         supervised continuous analysis:
                                         poll <config-dir> for semantic
                                         changes (debounced per-router
                                         fingerprints), re-analyze in a
                                         failure-isolated worker, persist
                                         crash-safely to --snapshot
                                         (default <config-dir>.rdsnap),
                                         and hot-swap the co-hosted HTTP
                                         server. Failures keep last-good
                                         serving and retry with jittered
                                         exponential backoff; /healthz
                                         turns 503 after --degraded-after
                                         consecutive failures (while
                                         queries still answer), and
                                         /healthz?live=1 stays 200 for
                                         process liveness
  rdx chaos <dir> [--seed N] [--configs M] [--snapshots K] [--max-rss-mb MB]
                                         deterministic fault-injection sweep:
                                         mutate the corpus M times and corrupt
                                         its snapshot K times, asserting
                                         error-not-panic, bounded memory, and
                                         deterministic diagnostics

commands (default: summary):
  summary [--json]           overview + design classification
  instances                  the routing instance graph
  roles                      Table-1 style role counts
  blocks                     recovered address blocks
  external                   external-facing interfaces
  pathway <router>           route pathway of one router
  dot [process|instances]    Graphviz output
  reach <src> <dst>          block reachability between prefixes
  flow <src> <dst> [proto] [port]
                             packet-filter verdicts for one flow
  separation <a> <b>         minimum router cut between instances
  whatif <router> [...]      failure simulation
  audit                      vulnerability findings (paper section 8.1)
  diag                       pipeline diagnostics
  diff <other-dir>           design changes between snapshots;
                             --networks prints the networks the change
                             invalidates (one per line; study
                             directories are diffed pairwise by
                             network name) instead of the router diff
  plan <target-dir> [--check]
                             safe reconfiguration plan from <config-dir>
                             to <target-dir>: per-router change units,
                             dependency-ordered so every intermediate
                             state preserves connectivity, instance
                             integrity, external-peering containment,
                             and border reachability (each state is
                             re-analyzed in memory). --json prints the
                             machine-readable plan (servable via
                             `rdx serve --plan`), --check replays every
                             step with fresh analyses, --timings reports
                             diff/dag/search phase times on stderr.
                             Exit 1 when no safe per-router ordering
                             exists.
  anonymize <out-dir> <key>  anonymize the corpus

  <router> accepts rN, a file name, or a hostname.

flags:
  --json             render summary as JSON (the body `rdx serve`
                     answers for /networks/{{id}}); render plan as the
                     canonical plan JSON
  --check            (plan only) independently re-verify every emitted
                     step with fresh analyses
  --networks         (diff only) print which networks the diff touches
                     via the router → owning-network invalidation map
  --timings          per-stage pipeline wall-clock times on stderr
  --metrics          dump the metrics registry on stderr
  --trace <path>     structured JSONL trace to path ('-' for stderr)
  --profile <path>   collapsed-stack wall-clock profile to path
                     (one 'stack;substack self_us' line per stack, for
                     flamegraph tooling; roots are the --timings stage
                     names; RD_PROF_ZERO=1 zeroes counts for byte-exact
                     determinism comparisons)
  --version, -V      print the version and exit
  --help, -h         print this reference and exit

serve endpoints:
  /healthz            health state machine (fresh / stale-serving-last-good
                      / degraded; 503 only when degraded); ?live=1 is pure
                      process liveness and always answers 200
  /networks /networks/{{id}} /networks/{{id}}/processes
  /instances /pathways /diag /metrics
  /plan               the reconfiguration plan given via --plan (404
                      when the server was started without one)
  /admin/debug/loop   per-event-loop health (wakeups, slab, wheel)
  /admin/debug/conns  live connections (state, age, buffers)
  /admin/debug/cache  serving snapshot + reload history ring
  /admin/debug/watch  watch supervisor state (generation, failures,
                      backoff, last error; null under plain `rdx serve`)
  Snapshot-derived responses carry the snapshot's FNV-1a-64 trailer as
  an ETag and honor If-None-Match with 304. SIGHUP or POST /admin/reload
  re-reads the snapshot file and hot-swaps it with zero dropped requests.
  /metrics includes per-request and per-loop histograms (request_us,
  conn_age_ms, epoll_wait_us, wakeup_events, iter_us), backpressure and
  rejection counters, rd_build_info, and process_uptime_seconds.

exit codes:
  0  success
  1  analysis or diagnostic errors (load failures, error-severity
     diagnostics from diag, unknown routers or instances; snap when a
     network was dropped by the error budget; chaos when a panic
     escaped, diagnostics were unstable, or the RSS cap was exceeded;
     plan when no safe per-router ordering exists or --check fails)
  2  usage errors (unknown command or flag, missing or malformed
     arguments)

degraded mode:
  Unreadable config files (non-UTF-8, empty, unparseable) are
  quarantined as error diagnostics and the analysis proceeds with the
  surviving routers. A network whose quarantined fraction exceeds the
  error budget (RD_ERROR_BUDGET, default 0.25) is dropped from study
  snapshots. Coverage appears in `summary --json` and /networks/{{id}}.
",
        env!("CARGO_PKG_VERSION")
    )
}

/// The network name a directory is published under: its basename (the
/// same rule `rdx snap` applies), so `rdx <dir> summary --json` matches
/// the served `/networks/{id}` body for that directory.
fn network_name(dir: &str) -> String {
    Path::new(dir)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "network".to_string())
}

fn snap_cmd(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut info: Option<String> = None;
    let mut from: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("rdx: snap: -o needs an output path");
                    return ExitCode::from(2);
                }
            },
            "--info" => match it.next() {
                Some(path) => info = Some(path.clone()),
                None => {
                    eprintln!("rdx: snap: --info needs a snapshot file");
                    return ExitCode::from(2);
                }
            },
            "--from" => match it.next() {
                Some(path) => from = Some(path.clone()),
                None => {
                    eprintln!("rdx: snap: --from needs a previous snapshot file");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("rdx: snap: unknown flag {other:?}");
                return ExitCode::from(2);
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => {
                eprintln!("rdx: snap: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(file) = info {
        return snap_info(&file);
    }
    let Some(dir) = dir else {
        eprintln!(
            "usage: rdx snap <dir> -o <file.rdsnap> [--from <prev.rdsnap>]\n\
             \x20      rdx snap --info <file.rdsnap>"
        );
        return ExitCode::from(2);
    };
    let out = out.unwrap_or_else(|| "study.rdsnap".to_string());

    let started = std::time::Instant::now();
    let (outcome, bytes, incr) = if let Some(prev) = from {
        // Incremental path: seed the delta engine from the previous
        // snapshot, refresh against the directory, and splice unchanged
        // networks' encoded bytes straight through. Output is
        // byte-identical to a cold run over the same directory.
        let mut engine = routing_design::incremental::DeltaEngine::new(Path::new(&dir));
        match std::fs::read(&prev) {
            Ok(prev_bytes) => {
                if let Err(e) = engine.seed_from_snapshot(&prev_bytes) {
                    eprintln!("rdx: snap: cannot seed from {prev}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("rdx: snap: cannot read {prev}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match engine.refresh() {
            Ok(refresh) => (refresh.outcome, refresh.bytes, Some(refresh.stats)),
            Err(e) => {
                eprintln!("rdx: failed to analyze {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match routing_design::snapshot::snap_dir(Path::new(&dir)) {
            Ok(o) => {
                let bytes = o.corpus.to_bytes();
                (o, bytes, None)
            }
            Err(e) => {
                eprintln!("rdx: failed to analyze {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let analyze_ms = started.elapsed().as_secs_f64() * 1e3;
    let write_started = std::time::Instant::now();
    if let Err(e) = rd_snap::write_atomic(Path::new(&out), &bytes) {
        eprintln!("rdx: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "snapshotted {} network(s) into {out}: {} bytes \
         (analyze {analyze_ms:.1} ms, encode+write {:.1} ms)",
        outcome.corpus.networks.len(),
        bytes.len(),
        write_started.elapsed().as_secs_f64() * 1e3,
    );
    if let Some(stats) = incr {
        eprintln!(
            "incremental: {} network(s) reused, {} recomputed, {} file(s) reparsed",
            stats.reused, stats.recomputed, stats.files_reparsed,
        );
    }
    for n in &outcome.corpus.networks {
        let c = &n.network.coverage;
        if c.degraded() {
            eprintln!(
                "rdx: snap: {} DEGRADED: {}/{} file(s) quarantined ({})",
                n.name,
                c.quarantined.len(),
                c.total_files,
                c.quarantined.join(", "),
            );
        }
    }
    if outcome.dropped.is_empty() {
        return ExitCode::SUCCESS;
    }
    // The snapshot is still written (the survivors are valid), but the
    // run is reported as a failure so scripts notice the missing data.
    for d in &outcome.dropped {
        eprintln!("rdx: snap: DROPPED {}: {}", d.name, d.reason);
    }
    eprintln!(
        "rdx: snap: {} network(s) dropped by the error budget ({:.0}%)",
        outcome.dropped.len(),
        routing_design::error_budget() * 100.0,
    );
    ExitCode::FAILURE
}

/// `rdx snap --info <file>`: print the container's section/manifest
/// table straight off the manifest footer — no network payload is
/// decoded, so this is cheap even for a large study snapshot.
fn snap_info(file: &str) -> ExitCode {
    let bytes = match std::fs::read(file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("rdx: snap: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match rd_snap::Manifest::read(&bytes) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("rdx: snap: {file} is not a valid snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Footer geometry: [..sections..][manifest payload][len u64][fnv u64]
    let manifest_len =
        u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap_or_default());
    let manifest_offset = bytes.len() - 16 - manifest_len as usize;
    println!("{file}: {} bytes, {} network section(s)", bytes.len(), manifest.entries.len());
    println!("{:<24} {:>12} {:>12}", "section", "offset", "bytes");
    for entry in &manifest.entries {
        println!("{:<24} {:>12} {:>12}", entry.name, entry.offset, entry.len);
    }
    println!("{:<24} {:>12} {:>12}", "(manifest)", manifest_offset, manifest_len);
    println!(
        "{:<24} {:>12} {:>12}",
        "(footer: len + fnv64)",
        bytes.len() - 16,
        16
    );
    ExitCode::SUCCESS
}

fn serve_cmd(args: &[String]) -> ExitCode {
    let mut file: Option<String> = None;
    let mut addr = "127.0.0.1:8080".to_string();
    let mut profile: Option<String> = None;
    let mut opts = rd_serve::ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("rdx: serve: --addr needs HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            "--profile" => match it.next() {
                Some(p) => profile = Some(p.clone()),
                None => {
                    eprintln!("rdx: serve: --profile needs an output path");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => opts.workers = n,
                None => {
                    eprintln!("rdx: serve: --workers needs a number");
                    return ExitCode::from(2);
                }
            },
            "--max-conns" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.max_conns = n,
                _ => {
                    eprintln!("rdx: serve: --max-conns needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => opts.cache = false,
            "--plan" => match it.next() {
                Some(p) => match std::fs::read_to_string(p) {
                    Ok(text) => opts.plan = Some(text),
                    Err(e) => {
                        eprintln!("rdx: serve: cannot read plan {p}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("rdx: serve: --plan needs a plan JSON file (from `rdx plan --json`)");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--addr=") => {
                addr = other["--addr=".len()..].to_string();
            }
            other if other.starts_with("--profile=") => {
                profile = Some(other["--profile=".len()..].to_string());
            }
            other if other.starts_with('-') => {
                eprintln!("rdx: serve: unknown flag {other:?}");
                return ExitCode::from(2);
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => {
                eprintln!("rdx: serve: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!(
            "usage: rdx serve <file.rdsnap> [--addr HOST:PORT] [--workers N] \
             [--max-conns N] [--no-cache] [--plan <plan.json>] [--profile <path>]"
        );
        return ExitCode::from(2);
    };
    if profile.is_some() {
        rd_obs::profile::enable();
    }
    rd_serve::install_signal_handlers();
    // start_file wires the snapshot in as the hot-reload source: SIGHUP
    // or `POST /admin/reload` re-reads it and swaps atomically.
    let server = match rd_serve::Server::start_file(Path::new(&file), &addr, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rdx: serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let networks = server.network_count();
    // Scripts parse this line for the bound (possibly ephemeral) port.
    println!("listening on http://{} ({networks} network(s) from {file})", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run_until_shutdown();
    if let Some(path) = &profile {
        match rd_obs::profile::write_folded(path) {
            Ok(()) => eprintln!("profile: collapsed stacks written to {path}"),
            Err(e) => eprintln!("rdx: cannot write profile {path}: {e}"),
        }
    }
    eprintln!("rdx: shut down cleanly");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// `rdx watch` — the supervised continuous-analysis daemon.

/// Parses the millisecond operand shared by the `--*-ms` watch flags.
fn ms_flag(it: &mut std::slice::Iter<String>, name: &str) -> Option<std::time::Duration> {
    match it.next().and_then(|n| n.parse::<u64>().ok()) {
        Some(ms) => Some(std::time::Duration::from_millis(ms)),
        None => {
            eprintln!("rdx: watch: {name} needs a millisecond count");
            None
        }
    }
}

fn watch_cmd(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:8080".to_string();
    let mut snapshot: Option<String> = None;
    let mut watch_opts = routing_design::watch::WatchOptions::default();
    let mut serve_opts = rd_serve::ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--poll-ms" => match ms_flag(&mut it, "--poll-ms") {
                Some(d) => watch_opts.poll_interval = d,
                None => return ExitCode::from(2),
            },
            "--debounce-ms" => match ms_flag(&mut it, "--debounce-ms") {
                Some(d) => watch_opts.debounce = d,
                None => return ExitCode::from(2),
            },
            "--backoff-ms" => match ms_flag(&mut it, "--backoff-ms") {
                Some(d) => watch_opts.backoff_base = d,
                None => return ExitCode::from(2),
            },
            "--backoff-max-ms" => match ms_flag(&mut it, "--backoff-max-ms") {
                Some(d) => watch_opts.backoff_max = d,
                None => return ExitCode::from(2),
            },
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("rdx: watch: --addr needs HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            "--snapshot" => match it.next() {
                Some(p) => snapshot = Some(p.clone()),
                None => {
                    eprintln!("rdx: watch: --snapshot needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--degraded-after" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => watch_opts.degraded_after = n,
                _ => {
                    eprintln!("rdx: watch: --degraded-after needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => watch_opts.seed = n,
                None => {
                    eprintln!("rdx: watch: --seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => serve_opts.workers = n,
                None => {
                    eprintln!("rdx: watch: --workers needs a number");
                    return ExitCode::from(2);
                }
            },
            "--max-conns" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => serve_opts.max_conns = n,
                _ => {
                    eprintln!("rdx: watch: --max-conns needs a positive number");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => serve_opts.cache = false,
            other if other.starts_with("--addr=") => {
                addr = other["--addr=".len()..].to_string();
            }
            other if other.starts_with("--snapshot=") => {
                snapshot = Some(other["--snapshot=".len()..].to_string());
            }
            other if other.starts_with('-') => {
                eprintln!("rdx: watch: unknown flag {other:?}");
                return ExitCode::from(2);
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => {
                eprintln!("rdx: watch: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!(
            "usage: rdx watch <config-dir> [--addr HOST:PORT] [--snapshot <file.rdsnap>] \
             [--poll-ms N] [--debounce-ms N] [--backoff-ms N] [--backoff-max-ms N] \
             [--degraded-after N] [--seed N] [--workers N] [--max-conns N] [--no-cache]"
        );
        return ExitCode::from(2);
    };
    // Default the persisted snapshot next to the config dir so recovery
    // after a crash finds it without flags: `<dir>.rdsnap`.
    let snapshot = snapshot.unwrap_or_else(|| {
        let trimmed = dir.trim_end_matches('/');
        format!("{trimmed}.rdsnap")
    });
    rd_serve::install_signal_handlers();
    match routing_design::watch::run_daemon(
        Path::new(&dir),
        Path::new(&snapshot),
        &addr,
        watch_opts,
        serve_opts,
    ) {
        Ok(()) => {
            eprintln!("rdx: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rdx: watch: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// `rdx chaos` — deterministic fault-injection sweep (the rd-chaos driver).

/// Reads one network directory as sorted `(file_name, bytes)` pairs.
fn read_config_files(dir: &Path) -> Result<Vec<(String, Vec<u8>)>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push((name, bytes));
    }
    Ok(files)
}

/// Collects the corpus under `dir`: each subdirectory holding files is a
/// network (study layout); otherwise the directory itself is one network.
fn read_corpus_files(dir: &Path) -> Result<Vec<(String, Vec<(String, Vec<u8>)>)>, String> {
    let mut subdirs: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subdirs.sort();
    let mut networks = Vec::new();
    for sub in subdirs {
        let files = read_config_files(&sub)?;
        if !files.is_empty() {
            let name = sub
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            networks.push((name, files));
        }
    }
    if networks.is_empty() {
        let files = read_config_files(dir)?;
        if files.is_empty() {
            return Err(format!("{} holds no config files", dir.display()));
        }
        networks.push((network_name(&dir.to_string_lossy()), files));
    }
    Ok(networks)
}

/// Rolling FNV-1a over the sweep's diagnostic stream — the determinism
/// witness printed at the end of `rdx chaos` (two runs with the same seed
/// must print the same digest at any `RD_THREADS`).
fn fnv_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn chaos_cmd(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut seed: u64 = 1;
    let mut configs: usize = 500;
    let mut snapshots: usize = 100;
    let mut max_rss_mb: u64 = 4096;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" | "--configs" | "--snapshots" | "--max-rss-mb" => {
                let Some(value) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("rdx: chaos: {arg} needs a number");
                    return ExitCode::from(2);
                };
                match arg.as_str() {
                    "--seed" => seed = value,
                    "--configs" => configs = value as usize,
                    "--snapshots" => snapshots = value as usize,
                    _ => max_rss_mb = value,
                }
            }
            other if other.starts_with('-') => {
                eprintln!("rdx: chaos: unknown flag {other:?}");
                return ExitCode::from(2);
            }
            other if dir.is_none() => dir = Some(other.to_string()),
            other => {
                eprintln!("rdx: chaos: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!(
            "usage: rdx chaos <dir> [--seed N] [--configs M] [--snapshots K] \
             [--max-rss-mb MB]"
        );
        return ExitCode::from(2);
    };
    let networks = match read_corpus_files(Path::new(&dir)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("rdx: chaos: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "chaos sweep: seed {seed}, {configs} config trial(s), \
         {snapshots} snapshot trial(s), {} network(s)",
        networks.len()
    );

    // The sweep *expects* caught panics; silence the default hook so the
    // summary is not buried under backtraces. Restored before returning.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    use std::collections::BTreeMap;
    #[derive(Default)]
    struct MutStats {
        trials: u64,
        degraded: u64,
        panics: u64,
    }
    let mut config_stats: BTreeMap<&'static str, MutStats> = BTreeMap::new();
    let mut code_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut escaped_panics: u64 = 0;
    let mut caught_worker_panics: u64 = 0;

    for trial in 0..configs {
        let (_, files) = &networks[trial % networks.len()];
        let mutator = rd_chaos::CONFIG_MUTATORS[trial % rd_chaos::CONFIG_MUTATORS.len()];
        let mut rng = rd_rng::StdRng::seed_from_u64(
            seed ^ (trial as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let victim = rng.gen_range(0..files.len());
        let mut mutated: Vec<(String, Vec<u8>)> = Vec::with_capacity(files.len());
        for (i, (name, bytes)) in files.iter().enumerate() {
            if i == victim {
                if let Some(out) = rd_chaos::mutate_config(&mut rng, mutator, bytes) {
                    mutated.push((name.clone(), out));
                }
            } else {
                mutated.push((name.clone(), bytes.clone()));
            }
        }
        let stats = config_stats.entry(mutator.name()).or_default();
        stats.trials += 1;
        digest = fnv_extend(digest, &(trial as u64).to_le_bytes());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            NetworkAnalysis::from_bytes_list(mutated)
        }));
        match result {
            Ok(analysis) => {
                if analysis.network.coverage.degraded() {
                    stats.degraded += 1;
                }
                for d in analysis.diagnostics.iter() {
                    if matches!(
                        d.code,
                        "parse-error" | "invalid-utf8" | "empty-config" | "worker-panic"
                    ) {
                        *code_counts.entry(d.code).or_default() += 1;
                        digest = fnv_extend(digest, d.to_string().as_bytes());
                        if d.code == "worker-panic" {
                            caught_worker_panics += 1;
                        }
                    }
                }
            }
            Err(_) => {
                stats.panics += 1;
                escaped_panics += 1;
            }
        }
    }

    // Clean baseline corpus for the snapshot corruptors.
    let baseline: Vec<rd_snap::NetworkSnapshot> = networks
        .iter()
        .map(|(name, files)| {
            routing_design::snapshot::capture(
                name,
                NetworkAnalysis::from_bytes_list(files.clone()),
            )
        })
        .collect();
    let corpus_bytes = rd_snap::Corpus::new(baseline).to_bytes();

    #[derive(Default)]
    struct SnapStats {
        trials: u64,
        rejected: u64,
        decoded: u64,
        panics: u64,
    }
    let mut snap_stats: BTreeMap<&'static str, SnapStats> = BTreeMap::new();
    for trial in 0..snapshots {
        let mutator = rd_chaos::SNAP_MUTATORS[trial % rd_chaos::SNAP_MUTATORS.len()];
        let mut rng = rd_rng::StdRng::seed_from_u64(
            seed ^ (trial as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        let corrupted = rd_chaos::corrupt_snapshot(&mut rng, mutator, &corpus_bytes);
        let stats = snap_stats.entry(mutator.name()).or_default();
        stats.trials += 1;
        match std::panic::catch_unwind(|| rd_snap::Corpus::from_bytes(&corrupted)) {
            Ok(Ok(_)) => stats.decoded += 1,
            Ok(Err(e)) => {
                stats.rejected += 1;
                digest = fnv_extend(digest, e.to_string().as_bytes());
            }
            Err(_) => {
                stats.panics += 1;
                escaped_panics += 1;
            }
        }
    }
    std::panic::set_hook(prev_hook);

    println!("config mutators:");
    for (name, s) in &config_stats {
        println!(
            "  {name:<20} trials {:>4}  degraded {:>4}  panics {:>2}",
            s.trials, s.degraded, s.panics
        );
    }
    println!("quarantine codes:");
    for (code, n) in &code_counts {
        println!("  {code:<20} {n:>6}");
    }
    println!("snapshot mutators:");
    for (name, s) in &snap_stats {
        println!(
            "  {name:<20} trials {:>4}  rejected {:>4}  decoded {:>2}  panics {:>2}",
            s.trials, s.rejected, s.decoded, s.panics
        );
    }
    println!("diagnostics digest: {digest:#018x}");

    let mut failed = false;
    if escaped_panics > 0 {
        println!("INVARIANT VIOLATED: {escaped_panics} panic(s) escaped the pipeline");
        failed = true;
    } else if caught_worker_panics > 0 {
        println!(
            "INVARIANT VIOLATED: {caught_worker_panics} parse worker panic(s) \
             (caught, but parse must fail via typed errors)"
        );
        failed = true;
    } else {
        println!(
            "invariant held: error-not-panic across {} trial(s)",
            configs + snapshots
        );
    }
    // RSS goes to stderr: it is the one machine-dependent number, and
    // stdout must stay byte-identical across runs for the determinism gate.
    if let Some(kb) = rd_obs::metrics::peak_rss_kb() {
        eprintln!("rdx: chaos: peak RSS {} MB (cap {max_rss_mb} MB)", kb / 1024);
        if kb / 1024 > max_rss_mb {
            eprintln!("rdx: chaos: INVARIANT VIOLATED: RSS cap exceeded");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn summary(a: &NetworkAnalysis) {
    println!("routers:             {}", a.network.len());
    println!("logical links:       {}", a.links.links.len());
    let (internal, external, unaddressed) = a.external.counts();
    println!(
        "interfaces:          {} internal-facing, {} external-facing, {} unaddressed",
        internal, external, unaddressed
    );
    println!("routing processes:   {}", a.processes.len());
    println!("routing instances:   {}", a.instances.len());
    for inst in a.instances.list.iter().take(10) {
        println!("  {}: {}", inst.id, inst.label());
    }
    if a.instances.len() > 10 {
        println!("  ... {} more", a.instances.len() - 10);
    }
    println!("external peer ASes:  {:?}", a.instance_graph.external_ases());
    println!("classification:      {}", a.design.class);
    println!(
        "  bgp speakers {} | internal ASes {} | ibgp {} | ebgp {} ext / {} int | bgp→igp {}",
        a.design.bgp_speakers,
        a.design.internal_ases,
        a.design.ibgp_sessions,
        a.design.external_ebgp_sessions,
        a.design.internal_ebgp_sessions,
        a.design.bgp_into_igp,
    );
    for mesh in a.ibgp_meshes() {
        if mesh.routers < 2 {
            continue;
        }
        println!(
            "  IBGP in {}: {} sessions over {} routers ({:.0}% of full mesh{})",
            a.instances.get(mesh.instance).label(),
            mesh.sessions,
            mesh.routers,
            mesh.completeness * 100.0,
            if mesh.uses_reflection() {
                format!(", {} route reflector(s)", mesh.reflectors.len())
            } else {
                String::new()
            }
        );
    }
    for area in a.area_structures() {
        if area.is_flat() {
            continue;
        }
        println!(
            "  OSPF areas in {}: {} areas, {} ABR(s), backbone area {}",
            a.instances.get(area.instance).label(),
            area.area_count(),
            area.abrs.len(),
            if area.has_backbone_area() { "present" } else { "MISSING" }
        );
    }
    let hints = &a.external.missing_router_hints;
    if !hints.is_empty() {
        println!("possible missing routers (external-facing inside internal blocks):");
        for h in hints.iter().take(5) {
            println!("  {} on {} (block {})", h.subnet, h.iface.router, h.block);
        }
    }
}

/// Prints every pipeline diagnostic (parse, topology, design level) and
/// a severity summary. Exits with failure iff any error-severity
/// diagnostic exists, so scripts can gate on corpus health.
fn diag(a: &NetworkAnalysis) -> ExitCode {
    for d in a.diagnostics.iter() {
        println!("{d}");
    }
    println!("{}", a.diagnostics.summary());
    if a.diagnostics.count(Severity::Error) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn blocks(a: &NetworkAnalysis) {
    println!("{:<20} {:>12} {:>8}", "block", "addresses", "used");
    for b in &a.blocks.roots {
        println!(
            "{:<20} {:>12} {:>7.0}%",
            b.prefix.to_string(),
            b.prefix.size(),
            b.utilization() * 100.0
        );
    }
}

fn external(a: &NetworkAnalysis) {
    for (iref, class) in a.external.classes.iter() {
        if class != routing_design::IfaceClass::External {
            continue;
        }
        let router = a.network.router(iref.router);
        let iface = &router.config.interfaces[iref.iface];
        let addr = iface
            .address
            .map(|x| x.subnet().to_string())
            .unwrap_or_else(|| "-".to_string());
        println!("{} {} {}", router.name(), iface.name, addr);
    }
}

fn resolve_router(a: &NetworkAnalysis, text: &str) -> Option<RouterId> {
    if let Some(stripped) = text.strip_prefix('r') {
        if let Ok(n) = stripped.parse::<usize>() {
            if n < a.network.len() {
                return Some(RouterId(n));
            }
        }
    }
    a.network
        .iter()
        .find(|(_, r)| r.file_name == text || r.name() == text)
        .map(|(id, _)| id)
}

fn pathway(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    let Some(text) = args.first() else {
        eprintln!("rdx: pathway needs a router (rN, file name, or hostname)");
        return ExitCode::from(2);
    };
    let Some(rid) = resolve_router(a, text) else {
        eprintln!("rdx: no router named {text:?}");
        return ExitCode::FAILURE;
    };
    println!("route pathway of {} ({}):", rid, a.network.router(rid).name());
    print!("{}", a.pathway_text(rid));
    ExitCode::SUCCESS
}

fn dot(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    match args.first().map(String::as_str).unwrap_or("instances") {
        "process" => print!("{}", a.process_graph_dot()),
        "instances" => print!("{}", a.instance_graph_dot()),
        other => {
            eprintln!("rdx: unknown dot target {other:?} (process|instances)");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

fn reach(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    let (Some(src), Some(dst)) = (args.first(), args.get(1)) else {
        eprintln!("rdx: reach needs <src-prefix> <dst-prefix>");
        return ExitCode::from(2);
    };
    let (Ok(src), Ok(dst)) = (src.parse::<Prefix>(), dst.parse::<Prefix>()) else {
        eprintln!("rdx: prefixes must look like 10.2.0.0/16");
        return ExitCode::from(2);
    };
    let reachability = a.reachability();
    let forward = reachability.block_reachable(src, dst);
    let reverse = reachability.block_reachable(dst, src);
    println!("{src} -> {dst}: {}", if forward { "reachable" } else { "UNREACHABLE" });
    println!("{dst} -> {src}: {}", if reverse { "reachable" } else { "UNREACHABLE" });
    ExitCode::SUCCESS
}

fn separation(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    let parse = |t: &String| t.trim_start_matches("instance").trim().parse::<usize>().ok();
    let (Some(x), Some(y)) = (args.first().and_then(parse), args.get(1).and_then(parse))
    else {
        eprintln!("rdx: separation needs two instance ids (e.g. 0 3)");
        return ExitCode::from(2);
    };
    if x >= a.instances.len() || y >= a.instances.len() {
        eprintln!("rdx: instance ids out of range (have {})", a.instances.len());
        return ExitCode::FAILURE;
    }
    let (ia, ib) = (
        routing_design::InstanceId(x),
        routing_design::InstanceId(y),
    );
    match a.instance_separation(ia, ib) {
        Some(n) => println!(
            "{} and {} are separated by the failure of {n} router(s)",
            a.instances.get(ia).label(),
            a.instances.get(ib).label()
        ),
        None => println!("instances share a router or cannot be separated"),
    }
    ExitCode::SUCCESS
}

fn flow(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    let (Some(src), Some(dst)) = (args.first(), args.get(1)) else {
        eprintln!("rdx: flow needs <src-addr> <dst-addr> [ip|tcp|udp|icmp|pim] [dst-port]");
        return ExitCode::from(2);
    };
    let (Ok(src), Ok(dst)) =
        (src.parse::<routing_design::Addr>(), dst.parse::<routing_design::Addr>())
    else {
        eprintln!("rdx: addresses must look like 10.0.0.1");
        return ExitCode::from(2);
    };
    let proto = match args.get(2) {
        Some(text) => match reachability::FlowProto::parse(text) {
            Some(p) => p,
            None => {
                eprintln!("rdx: unknown protocol {text:?}");
                return ExitCode::from(2);
            }
        },
        None => reachability::FlowProto::Ip,
    };
    let dst_port = args.get(3).and_then(|t| t.parse::<u16>().ok());
    let probe = reachability::Flow { src, dst, proto, src_port: None, dst_port };
    let verdicts = reachability::flow_verdicts(&a.network, &probe);
    if verdicts.is_empty() {
        println!("no packet filters applied anywhere");
        return ExitCode::SUCCESS;
    }
    let mut dropped = 0;
    for v in &verdicts {
        if v.permitted {
            continue;
        }
        dropped += 1;
        let router = a.network.router(v.iface.router);
        let iface = &router.config.interfaces[v.iface.iface];
        let clause = v
            .deciding_clause
            .map(|c| format!("clause {c}"))
            .unwrap_or_else(|| "implicit deny".to_string());
        println!(
            "DROPPED at {} {} ({:?}) by access-list {} ({clause})",
            router.name(),
            iface.name,
            v.direction,
            v.acl
        );
    }
    if dropped == 0 {
        println!("permitted by all {} filter applications", verdicts.len());
    } else {
        println!("({dropped} of {} filter applications drop this flow)", verdicts.len());
    }
    ExitCode::SUCCESS
}

fn whatif(a: &NetworkAnalysis, args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("rdx: whatif needs one or more routers (rN, file name, or hostname)");
        return ExitCode::from(2);
    }
    let mut failed = std::collections::BTreeSet::new();
    for text in args {
        let Some(rid) = resolve_router(a, text) else {
            eprintln!("rdx: no router named {text:?}");
            return ExitCode::FAILURE;
        };
        failed.insert(rid);
    }
    let graph = routing_design::RouterGraph::build(&a.network, &a.links);
    let before = graph.components().len();
    let after = graph.components_without(&failed);
    println!(
        "failing {} router(s): {} component(s) before, {} after",
        failed.len(),
        before,
        after.len()
    );
    if after.len() > before {
        println!("NETWORK PARTITIONS. resulting component sizes:");
        for comp in &after {
            println!("  {} routers (first: {})", comp.len(), a.network.router(comp[0]).name());
        }
    } else {
        println!("network stays as connected as before");
    }
    let arts = graph.articulation_routers();
    if !arts.is_empty() {
        let names: Vec<&str> =
            arts.iter().take(8).map(|r| a.network.router(*r).name()).collect();
        println!("single points of failure in this network: {names:?}");
    }
    ExitCode::SUCCESS
}

fn diff_cmd(old: &NetworkAnalysis, dir: &str, args: &[String], flags: &Flags) -> ExitCode {
    let Some(other) = args.first() else {
        eprintln!("rdx: diff needs the other snapshot's directory");
        return ExitCode::from(2);
    };
    // A missing or unreadable comparison directory is a usage error (the
    // caller pointed at the wrong place), not an analysis failure.
    if !Path::new(other).is_dir() {
        eprintln!("rdx: diff: {other:?} is not a readable config directory");
        return ExitCode::from(2);
    }
    if flags.networks {
        return diff_networks(dir, other);
    }
    let new = match NetworkAnalysis::from_dir(Path::new(other)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rdx: diff: cannot load {other}: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", routing_design::DesignDiff::between(old, &new));
    ExitCode::SUCCESS
}

/// `rdx <dir> diff <other> --networks`: instead of the router-level diff,
/// print which networks the change invalidates — the question the
/// incremental engine answers before re-analyzing. Both sides may be a
/// study directory (each subdirectory a network) or a single network;
/// same-named networks are diffed pairwise and routed through the
/// router → owning-network invalidation map; networks present on only
/// one side are touched by definition.
fn diff_networks(dir: &str, other: &str) -> ExitCode {
    let load = |d: &str| -> Result<Vec<(String, NetworkAnalysis)>, String> {
        Ok(read_corpus_files(Path::new(d))?
            .into_iter()
            .map(|(name, files)| (name, NetworkAnalysis::from_bytes_list(files)))
            .collect())
    };
    let (old_nets, new_nets) = match (load(dir), load(other)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("rdx: diff: {e}");
            return ExitCode::from(2);
        }
    };
    let map = routing_design::diff::invalidation_map(
        old_nets.iter().map(|(name, a)| (name.as_str(), a)),
    );
    let new_by_name: std::collections::BTreeMap<&str, &NetworkAnalysis> =
        new_nets.iter().map(|(name, a)| (name.as_str(), a)).collect();
    let mut touched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (name, old_analysis) in &old_nets {
        match new_by_name.get(name.as_str()) {
            Some(new_analysis) => {
                let diff = routing_design::DesignDiff::between(old_analysis, new_analysis);
                if !diff.is_empty() {
                    touched.insert(name.clone());
                    touched.extend(routing_design::diff::networks_touched(&map, &diff));
                }
            }
            // Network removed outright: everything it held is invalidated.
            None => {
                touched.insert(name.clone());
            }
        }
    }
    for (name, _) in &new_nets {
        if !old_nets.iter().any(|(old_name, _)| old_name == name) {
            touched.insert(name.clone());
        }
    }
    if touched.is_empty() {
        println!("no networks touched");
    } else {
        for name in &touched {
            println!("{name}");
        }
    }
    ExitCode::SUCCESS
}

fn plan_cmd(dir: &str, args: &[String], flags: &Flags) -> ExitCode {
    let Some(target_dir) = args.first() else {
        eprintln!("rdx: plan needs the target corpus directory");
        return ExitCode::from(2);
    };
    for (label, d) in [("current", dir), ("target", target_dir.as_str())] {
        if !Path::new(d).is_dir() {
            eprintln!("rdx: plan: {label} directory {d:?} is not a readable config directory");
            return ExitCode::from(2);
        }
    }
    let read = |label: &str, d: &str| match read_config_files(Path::new(d)) {
        Ok(files) => Ok(files),
        Err(e) => {
            eprintln!("rdx: plan: {label} corpus: {e}");
            Err(ExitCode::from(2))
        }
    };
    let current = match read("current", dir) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let target = match read("target", target_dir) {
        Ok(f) => f,
        Err(code) => return code,
    };
    let plan = match routing_design::plan::plan_corpora(&current, &target) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rdx: plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flags.json {
        print!("{}", rd_plan::render_json(&plan));
    } else {
        print!("{}", rd_plan::render_table(&plan));
    }
    if flags.timings {
        eprintln!(
            "plan phase timings ({} unit(s), {} intermediate state(s), \
             {} worker thread(s)):",
            plan.units.len(),
            plan.stats.states_analyzed,
            rd_par::thread_count()
        );
        for (name, duration) in &plan.timings {
            eprintln!("  {name:<8} {:>10.3} ms", duration.as_secs_f64() * 1e3);
        }
    }
    if flags.check {
        match rd_plan::verify_plan(&current, &target, &plan, routing_design::plan::analyze_files)
        {
            Ok(steps) => eprintln!("plan check: {steps} step(s) independently re-verified"),
            Err(e) => {
                eprintln!("rdx: plan check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn anonymize(dir: &str, args: &[String]) -> ExitCode {
    let (Some(out), Some(key)) = (args.first(), args.get(1)) else {
        eprintln!("rdx: anonymize needs <out-dir> <key>");
        return ExitCode::from(2);
    };
    let anon = anonymizer::Anonymizer::new(key.as_bytes());
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("rdx: cannot create {out}: {e}");
        return ExitCode::FAILURE;
    }
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.path())
            .collect(),
        Err(e) => {
            eprintln!("rdx: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    entries.sort();
    for (i, path) in entries.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rdx: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let out_path = Path::new(out).join(format!("config{}", i + 1));
        if let Err(e) = std::fs::write(&out_path, anon.anonymize_config(&text)) {
            eprintln!("rdx: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
    }
    println!("anonymized {} files into {out}", entries.len());
    ExitCode::SUCCESS
}
