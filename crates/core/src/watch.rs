//! `rdx watch`: a supervised, self-healing continuous-analysis daemon.
//!
//! Operators push router configs a few at a time; the analysis must keep
//! answering queries through bad pushes, partial writes, and transient
//! failures. [`Watcher`] polls a config directory for changes — a cheap
//! mtime/size sweep first, then per-router FNV fingerprints
//! ([`crate::diff::config_fingerprint`]) so cosmetic churn (comments,
//! whitespace, `!` separators) never triggers a rebuild — debounced so a
//! mid-push partial state coalesces into one re-analysis. Rebuilds run
//! through the incremental delta engine
//! ([`DeltaEngine`](crate::incremental::DeltaEngine)): only the networks
//! the change actually touched are re-analyzed, every other network's
//! encoded snapshot bytes splice through unchanged, and the output stays
//! byte-identical to a cold run. Analysis runs
//! in a failure-isolated worker: a panic, a parse failure, or an
//! over-budget network ([`nettopo::error_budget`]) marks the attempt
//! failed without touching the serving snapshot. Results persist through
//! the crash-safe [`rd_snap::write_atomic`] and publish into the
//! co-hosted `rd-serve` instance via its atomic-Arc swap
//! ([`rd_serve::Controller::publish`]), so the last-good snapshot keeps
//! serving whenever the new analysis fails.
//!
//! Failure handling is a small state machine surfaced at `/healthz` and
//! `/admin/debug/watch`:
//!
//! - `fresh` — the served snapshot reflects the latest config state;
//! - `stale-serving-last-good` — the latest attempt failed, last-good
//!   serves, a retry is scheduled with exponential backoff plus
//!   `rd_rng` jitter (so a fleet of watchers never thunders in sync);
//! - `degraded` — [`WatchOptions::degraded_after`] consecutive failures;
//!   `/healthz` turns 503 while queries still answer from last-good.
//!
//! A successful publish — or the configs reverting to the last published
//! state — converges back to `fresh` and resets the backoff.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rd_chaos::DiskFault;
use rd_rng::StdRng;
use rd_serve::{Controller, HealthState, ServeOptions, Server, WatchStatus};
use rd_snap::Corpus;

use crate::diff::config_fingerprint;
use crate::incremental::DeltaEngine;
use crate::snapshot::snap_dir;

/// Supervisor tuning knobs.
#[derive(Clone, Debug)]
pub struct WatchOptions {
    /// How often the config directory is scanned.
    pub poll_interval: Duration,
    /// How long the directory must be quiet after a change before
    /// re-analysis — mid-push partial states coalesce into one rebuild.
    pub debounce: Duration,
    /// First retry delay after a failed analysis; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Retry delay ceiling (jitter excluded).
    pub backoff_max: Duration,
    /// Consecutive failures before `stale-serving-last-good` escalates
    /// to `degraded` (and `/healthz` turns 503).
    pub degraded_after: u32,
    /// Seed for the backoff jitter (and any injected faults).
    pub seed: u64,
}

impl Default for WatchOptions {
    fn default() -> WatchOptions {
        WatchOptions {
            poll_interval: Duration::from_millis(500),
            debounce: Duration::from_millis(1000),
            backoff_base: Duration::from_millis(1000),
            backoff_max: Duration::from_secs(60),
            degraded_after: 3,
            seed: 0,
        }
    }
}

/// The outcome of one [`Watcher::tick`], for callers that drive the
/// watcher manually (tests, the chaos soak).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tick {
    /// Nothing to do: no change pending, serving state is current.
    Idle,
    /// A change is pending but still inside the debounce window or the
    /// retry backoff.
    Waiting,
    /// An analysis attempt ran and published successfully.
    Published,
    /// An analysis attempt ran and failed; last-good keeps serving.
    Failed,
}

/// The supervised continuous-analysis loop. Create with [`Watcher::new`]
/// against a running server's [`Controller`], then either [`run`]
/// (daemon) or [`tick`](Watcher::tick) manually (tests, soak harnesses).
///
/// [`run`]: Watcher::run
pub struct Watcher {
    dir: PathBuf,
    snapshot_path: PathBuf,
    ctrl: Controller,
    opts: WatchOptions,
    rng: StdRng,
    /// The incremental re-analysis engine: rebuild ticks recompute only
    /// the networks the debounced change actually touched and splice
    /// every other network's snapshot bytes through unchanged
    /// (`incr.*` metrics record the split).
    engine: DeltaEngine,
    /// Cheap signature (names + sizes + mtimes) of the last scan;
    /// fingerprints are only recomputed when it moves.
    scan_sig: u64,
    /// Per-config semantic fingerprints of the latest observed state.
    latest: BTreeMap<String, u64>,
    /// Fingerprints at the last successful publish (what is serving).
    published: BTreeMap<String, u64>,
    /// When `latest` last changed — the debounce clock. `None` once the
    /// change has been acted on (or at a quiet start).
    changed_at: Option<Instant>,
    /// Earliest time the next analysis attempt may run (backoff gate).
    next_attempt: Instant,
    consecutive_failures: u32,
    status: WatchStatus,
    /// One-shot injected persist fault (chaos soak / tests).
    inject_fault: Option<DiskFault>,
    /// One-shot injected analysis panic (failure-isolation tests).
    inject_panic: bool,
}

impl Watcher {
    /// Builds a watcher over `dir`, persisting snapshots to
    /// `snapshot_path` and publishing into `ctrl`. The initial scan's
    /// fingerprints are taken as *published* — correct when the server
    /// was just booted from a fresh analysis of the same directory. If
    /// the server booted from a previously persisted (possibly stale)
    /// snapshot instead, follow with [`mark_boot_stale`], which forces
    /// the first tick to re-analyze.
    ///
    /// [`mark_boot_stale`]: Watcher::mark_boot_stale
    pub fn new(dir: &Path, snapshot_path: &Path, ctrl: Controller, opts: WatchOptions) -> Watcher {
        let mut w = Watcher {
            dir: dir.to_path_buf(),
            snapshot_path: snapshot_path.to_path_buf(),
            ctrl,
            rng: StdRng::seed_from_u64(opts.seed ^ 0x77a7c8_57a7e5),
            engine: DeltaEngine::new(dir),
            opts,
            scan_sig: 0,
            latest: BTreeMap::new(),
            published: BTreeMap::new(),
            changed_at: None,
            next_attempt: Instant::now(),
            consecutive_failures: 0,
            status: WatchStatus::default(),
            inject_fault: None,
            inject_panic: false,
        };
        let (sig, prints) = w.scan();
        w.scan_sig = sig;
        w.latest = prints.unwrap_or_default();
        w.published = w.latest.clone();
        w.status.fingerprints = w.latest.len();
        w.publish_status();
        w
    }

    /// Declares the serving snapshot potentially stale (booted from a
    /// persisted file): the first tick re-analyzes regardless of whether
    /// the configs changed since.
    pub fn mark_boot_stale(&mut self) {
        self.published.clear();
    }

    /// Seeds the incremental engine from persisted snapshot container
    /// bytes (the boot snapshot): the first rebuild tick then re-analyzes
    /// only the networks whose config files no longer hash the way the
    /// snapshot recorded. Returns false (and leaves the engine cold) when
    /// the bytes do not decode.
    pub fn seed_from_snapshot(&mut self, bytes: &[u8]) -> bool {
        self.engine.seed_from_snapshot(bytes).is_ok()
    }

    /// Arms a one-shot injected panic inside the next analysis attempt —
    /// how tests prove a worker panic cannot take the daemon down.
    pub fn inject_analysis_panic(&mut self) {
        self.inject_panic = true;
    }

    /// Arms a one-shot disk fault for the next snapshot persist.
    pub fn inject_disk_fault(&mut self, fault: DiskFault) {
        self.inject_fault = Some(fault);
    }

    /// The server's current health state.
    pub fn health(&self) -> HealthState {
        self.ctrl.health()
    }

    /// Successful publishes since the watcher started.
    pub fn generation(&self) -> u64 {
        self.status.generation
    }

    /// Failed attempts since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Failed attempts over the watcher's whole lifetime.
    pub fn total_failures(&self) -> u64 {
        self.status.failures
    }

    /// True when the serving snapshot reflects the latest observed
    /// config state (nothing pending).
    pub fn settled(&self) -> bool {
        self.latest == self.published
    }

    /// One poll cycle: scan, debounce, and — when a change is due and
    /// the backoff allows — re-analyze, persist, and publish.
    pub fn tick(&mut self) -> Tick {
        let _span = rd_obs::span!("watch.tick");
        rd_obs::metrics::counter_add("watch.scans", 1);
        let now = Instant::now();

        let (sig, prints) = self.scan();
        if sig != self.scan_sig {
            self.scan_sig = sig;
            let prints = prints.unwrap_or_default();
            if prints != self.latest {
                // A semantic change (cosmetic churn fingerprints
                // identically and falls through). Restart the debounce
                // window so a push in progress coalesces.
                self.latest = prints;
                self.changed_at = Some(now);
                self.status.last_change_ms = self.ctrl.uptime_ms();
                self.status.fingerprints = self.latest.len();
                rd_obs::metrics::counter_add("watch.changes", 1);
                self.publish_status();
            }
        }

        if self.settled() {
            // Nothing pending. If we were failing and the configs
            // reverted to the last published state, the served snapshot
            // is current again: converge back to fresh.
            if self.consecutive_failures > 0 {
                self.clear_failures();
                self.ctrl.set_health(HealthState::Fresh);
                self.publish_status();
            }
            self.changed_at = None;
            return Tick::Idle;
        }
        if let Some(at) = self.changed_at {
            if now.duration_since(at) < self.opts.debounce {
                return Tick::Waiting;
            }
        }
        if now < self.next_attempt {
            return Tick::Waiting;
        }
        self.changed_at = None;
        if self.attempt() {
            Tick::Published
        } else {
            Tick::Failed
        }
    }

    /// The daemon loop: tick at `poll_interval` until the co-hosted
    /// server shuts down (signal or programmatic).
    pub fn run(mut self) {
        while !self.ctrl.is_shutdown() {
            self.tick();
            std::thread::sleep(self.opts.poll_interval);
        }
    }

    /// One failure-isolated analyze → persist → publish attempt.
    /// Returns true on publish.
    fn attempt(&mut self) -> bool {
        let _span = rd_obs::span!("watch.analyze");
        let attempt_prints = self.latest.clone();
        let inject_panic = std::mem::take(&mut self.inject_panic);

        // The worker: anything it throws — an injected panic, a parser
        // bug, an allocation failure surfaced as panic — is caught here
        // and handled as a failed attempt. The daemon itself never dies.
        // The delta engine recomputes only the networks the change
        // touched and splices the rest through (it commits its cache
        // only after a complete pass, so a panic here cannot leave it
        // half-updated).
        let engine = &mut self.engine;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected analysis panic");
            }
            engine.refresh()
        }));
        let (corpus, bytes) = match result {
            Err(payload) => {
                rd_obs::metrics::counter_add("watch.analysis_panics", 1);
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                return self.fail(format!("analysis panicked: {what}"));
            }
            Ok(Err(e)) => return self.fail(format!("analysis failed: {e}")),
            Ok(Ok(refresh)) => {
                let outcome = refresh.outcome;
                if !outcome.dropped.is_empty() {
                    // Over-budget parse damage: publishing would silently
                    // shrink the corpus. Keep last-good serving instead.
                    let names: Vec<&str> =
                        outcome.dropped.iter().map(|d| d.name.as_str()).collect();
                    return self.fail(format!(
                        "{} network(s) over error budget: {}",
                        outcome.dropped.len(),
                        names.join(", ")
                    ));
                }
                if outcome.corpus.networks.iter().all(|n| n.network.routers.is_empty()) {
                    // A vanished or emptied config dir analyzes "cleanly"
                    // into zero routers. Publishing that would wipe the
                    // served corpus on what is far more likely a broken
                    // push (rm + copy in flight) than a real decommission
                    // of every router at once. Keep last-good.
                    return self.fail("analysis produced an empty corpus".to_string());
                }
                (outcome.corpus, refresh.bytes)
            }
        };

        let persisted = match self.inject_fault.take() {
            Some(fault) => {
                rd_chaos::faulty_persist(&mut self.rng, fault, &self.snapshot_path, &bytes)
            }
            None => rd_snap::write_atomic(&self.snapshot_path, &bytes),
        };
        if let Err(e) = persisted {
            // The staging `.tmp` may be torn; last-good under the final
            // name is untouched by design. Serve memory? No: a snapshot
            // we could not persist is a snapshot a restart would lose —
            // treat the attempt as failed and retry whole.
            return self.fail(format!("snapshot persist failed: {e}"));
        }

        let _publish = rd_obs::span!("watch.publish");
        self.ctrl.publish(corpus, rd_snap::trailer_of(&bytes), "watch");
        self.ctrl.set_health(HealthState::Fresh);
        self.published = attempt_prints;
        self.clear_failures();
        self.status.generation += 1;
        self.status.last_publish_ms = self.ctrl.uptime_ms();
        rd_obs::metrics::counter_add("watch.publish_ok", 1);
        self.publish_status();
        true
    }

    /// Books a failed attempt: count it, keep last-good serving, move
    /// the health state, and schedule the retry with exponential backoff
    /// plus seeded jitter.
    fn fail(&mut self, error: String) -> bool {
        self.consecutive_failures += 1;
        self.status.failures += 1;
        self.status.consecutive_failures = self.consecutive_failures;
        self.status.last_error = Some(error.clone());
        self.ctrl.record_failure(&error);
        self.ctrl.set_health(if self.consecutive_failures >= self.opts.degraded_after {
            HealthState::Degraded
        } else {
            HealthState::Stale
        });

        let base_ms = self.opts.backoff_base.as_millis().max(1) as u64;
        let cap_ms = self.opts.backoff_max.as_millis().max(1) as u64;
        let exp_ms =
            base_ms.saturating_mul(1u64 << (self.consecutive_failures - 1).min(20)).min(cap_ms);
        // Up to +25% jitter so a fleet of watchers retrying against the
        // same flapping input decorrelates.
        let jitter_ms = self.rng.gen_range(0..=exp_ms / 4);
        let backoff = Duration::from_millis(exp_ms + jitter_ms);
        self.next_attempt = Instant::now() + backoff;
        self.status.backoff_ms = backoff.as_millis() as u64;

        rd_obs::metrics::counter_add("watch.publish_failed", 1);
        rd_obs::metrics::gauge_set("watch.consecutive_failures", self.consecutive_failures as i64);
        rd_obs::metrics::gauge_set("watch.backoff_ms", self.status.backoff_ms as i64);
        eprintln!(
            "rdx watch: analysis attempt failed ({error}); serving last-good, retry in {} ms",
            self.status.backoff_ms
        );
        self.publish_status();
        false
    }

    fn clear_failures(&mut self) {
        self.consecutive_failures = 0;
        self.status.consecutive_failures = 0;
        self.status.backoff_ms = 0;
        self.status.last_error = None;
        self.next_attempt = Instant::now();
        rd_obs::metrics::gauge_set("watch.consecutive_failures", 0);
        rd_obs::metrics::gauge_set("watch.backoff_ms", 0);
    }

    fn publish_status(&self) {
        self.ctrl.set_watch_status(self.status.clone());
    }

    /// Scans the config directory: returns a cheap signature over
    /// (name, size, mtime) of every file, and — only when the signature
    /// moved since the last scan — the per-config semantic fingerprints.
    fn scan(&self) -> (u64, Option<BTreeMap<String, u64>>) {
        let _span = rd_obs::span!("watch.scan");
        let mut entries: Vec<(String, u64, u128)> = Vec::new();
        collect_files(&self.dir, "", &mut entries, 0);
        entries.sort();
        let mut sig_bytes = Vec::with_capacity(entries.len() * 32);
        for (name, size, mtime) in &entries {
            sig_bytes.extend_from_slice(name.as_bytes());
            sig_bytes.push(0);
            sig_bytes.extend_from_slice(&size.to_le_bytes());
            sig_bytes.extend_from_slice(&mtime.to_le_bytes());
        }
        let sig = rd_snap::fnv1a64(&sig_bytes);
        if sig == self.scan_sig {
            return (sig, None);
        }
        let mut prints = BTreeMap::new();
        for (name, _, _) in &entries {
            let path = self.dir.join(name);
            let Ok(bytes) = std::fs::read(&path) else {
                // Vanished or unreadable mid-scan: fingerprint the gap.
                prints.insert(name.clone(), 0);
                continue;
            };
            let fp = match std::str::from_utf8(&bytes) {
                // The semantic fingerprint when it parses: cosmetic
                // churn is invisible, any config change moves it.
                Ok(text) => match ioscfg::parse_config(text) {
                    Ok(config) => config_fingerprint(&config),
                    Err(_) => rd_snap::fnv1a64(&bytes),
                },
                Err(_) => rd_snap::fnv1a64(&bytes),
            };
            prints.insert(name.clone(), fp);
        }
        (sig, Some(prints))
    }
}

/// Recursive (depth ≤ 2: study dirs are `study/netN/config`) file
/// collection for the scan signature.
fn collect_files(dir: &Path, prefix: &str, out: &mut Vec<(String, u64, u128)>, depth: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = match path.file_name() {
            Some(n) => n.to_string_lossy().into_owned(),
            None => continue,
        };
        let rel = if prefix.is_empty() { name } else { format!("{prefix}/{name}") };
        if path.is_dir() {
            if depth < 2 {
                collect_files(&path, &rel, out, depth + 1);
            }
        } else if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("rdsnap" | "tmp" | "quarantined")
        ) {
            // Snapshot artifacts (persisted last-good, staging files,
            // quarantined remnants) are never router configs; skipping
            // them keeps a snapshot path inside the watched tree from
            // churning the scan on every persist.
        } else if let Ok(meta) = std::fs::metadata(&path) {
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            out.push((rel, meta.len(), mtime));
        }
    }
}

/// Boots the full daemon: recovery sweep, initial snapshot (from the
/// persisted last-good file when it is valid, else a fresh synchronous
/// analysis), a co-hosted server on `addr`, and the watch loop on a
/// supervisor thread. Blocks until shutdown (SIGTERM/SIGINT). This is
/// `rdx watch`.
pub fn run_daemon(
    dir: &Path,
    snapshot_path: &Path,
    addr: &str,
    watch_opts: WatchOptions,
    serve_opts: ServeOptions,
) -> Result<(), String> {
    // The snapshot must live outside the watched tree: inside it, the
    // analyzer would read the binary artifact as a router config (and
    // the study-layout detection would misfire on the stray file).
    let canonical_dir = std::fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf());
    let canonical_snap = snapshot_path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .and_then(|p| std::fs::canonicalize(p).ok());
    if canonical_snap.is_some_and(|p| p.starts_with(&canonical_dir)) {
        return Err(format!(
            "snapshot path {} is inside the watched directory {}; pass --snapshot \
             pointing outside it",
            snapshot_path.display(),
            dir.display()
        ));
    }

    // Crash recovery first: a torn `.tmp` from a previous life must not
    // sit where the next write_atomic stages.
    if let Some(parent) = snapshot_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let swept = rd_snap::recover_dir(parent)
            .map_err(|e| format!("recovery sweep of {} failed: {e}", parent.display()))?;
        for q in &swept {
            eprintln!("rdx watch: quarantined stale staging file -> {}", q.display());
        }
    }

    // Boot corpus: prefer the persisted last-good snapshot (instant
    // start, survives a config dir that is currently broken); fall back
    // to a fresh analysis.
    let mut boot_stale = false;
    if Corpus::read_file_with_trailer(snapshot_path).is_ok() {
        boot_stale = true;
    } else {
        let outcome = snap_dir(dir).map_err(|e| format!("initial analysis failed: {e}"))?;
        if !outcome.dropped.is_empty() {
            let names: Vec<&str> = outcome.dropped.iter().map(|d| d.name.as_str()).collect();
            return Err(format!(
                "initial analysis dropped {} network(s) ({}) and no last-good snapshot exists",
                outcome.dropped.len(),
                names.join(", ")
            ));
        }
        if outcome.corpus.networks.iter().all(|n| n.network.routers.is_empty()) {
            return Err("initial analysis produced an empty corpus".to_string());
        }
        rd_snap::write_atomic(snapshot_path, &outcome.corpus.to_bytes())
            .map_err(|e| format!("cannot persist initial snapshot: {e}"))?;
    }

    let server = Server::start_file(snapshot_path, addr, serve_opts)
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "listening on http://{} ({} network(s) from {})",
        server.local_addr(),
        server.network_count(),
        snapshot_path.display()
    );
    println!("watching {} (poll {} ms, debounce {} ms)", dir.display(),
        watch_opts.poll_interval.as_millis(), watch_opts.debounce.as_millis());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let mut watcher = Watcher::new(dir, snapshot_path, server.controller(), watch_opts);
    if boot_stale {
        watcher.mark_boot_stale();
    }
    // Both boot paths leave a valid snapshot at snapshot_path; seeding
    // the delta engine from it means the first rebuild tick re-analyzes
    // only the networks that actually changed since it was written.
    if let Ok(bytes) = std::fs::read(snapshot_path) {
        watcher.seed_from_snapshot(&bytes);
    }
    let supervisor = std::thread::Builder::new()
        .name("rdx-watch".to_string())
        .spawn(move || watcher.run())
        .map_err(|e| format!("cannot spawn watch loop: {e}"))?;
    server.run_until_shutdown();
    supervisor.join().map_err(|_| "watch loop panicked".to_string())?;
    Ok(())
}
