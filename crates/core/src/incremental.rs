//! The incremental re-analysis engine: fingerprint-scoped delta
//! recomputation for config churn.
//!
//! Operational networks change a few routers at a time (Section 8.1's
//! maintenance reality), yet a cold `rdx snap` pays parse + topology +
//! routing-model cost for all 31 networks on every run. [`DeltaEngine`]
//! keeps the previous refresh's per-network state — file stats, raw-byte
//! FNV hashes, cached parse products, the finished [`NetworkSnapshot`]
//! and its encoded section payload — and on each [`refresh`] recomputes
//! only the networks whose inputs actually moved:
//!
//! 1. a `(name, size, mtime)` stat sweep skips networks whose directory
//!    is bit-for-bit untouched without reading any file;
//! 2. for networks the stat sweep flags, raw-byte FNV hashes
//!    ([`rd_snap::fnv1a64`]) decide file by file what really changed —
//!    a `touch` or an rsync that rewrote identical bytes reuses the
//!    cached analysis;
//! 3. changed networks re-parse **only their changed files**, splicing
//!    cached [`PreparsedFile`] products for the rest, and rebuild
//!    through the exact cold-path assembly
//!    ([`Network::from_parsed`] → [`NetworkAnalysis::from_network`]);
//! 4. unchanged networks' encoded section bytes are copied straight
//!    into the output container ([`rd_snap::assemble_container`])
//!    instead of being re-encoded.
//!
//! The result — snapshot bytes, restored corpus, and everything derived
//! from them — is **byte-identical to a cold [`snap_dir`] run at any
//! `RD_THREADS`**, because every recomputed network flows through the
//! same deterministic pipeline and every reused network contributes the
//! very bytes a cold run would re-produce. The engine can also be
//! seeded from a persisted snapshot ([`seed_from_snapshot`]): the
//! manifest footer locates each network's payload and
//! [`NetworkSnapshot::file_hashes`] carries the hashes, so a freshly
//! booted `rdx watch` daemon reuses everything that did not change
//! while it was down (the parse-product cache starts empty, so the
//! first change to a seeded network re-parses that network whole).
//!
//! Observability: each refresh runs under an `analyze.incr` profile
//! span and records `incr.networks_reused`, `incr.networks_recomputed`
//! and `incr.files_reparsed` counters plus an `incr.last_wall_us`
//! gauge.
//!
//! [`refresh`]: DeltaEngine::refresh
//! [`seed_from_snapshot`]: DeltaEngine::seed_from_snapshot
//! [`snap_dir`]: crate::snapshot::snap_dir

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use nettopo::{Network, PreparsedFile};
use rd_snap::{assemble_container, Corpus, Manifest, NetworkSnapshot, Snap, Writer};

use crate::snapshot::{capture, is_study_dir, DroppedNetwork, SnapOutcome};
use crate::{read_dir_files, LoadError, NetworkAnalysis};

/// What one [`DeltaEngine::refresh`] actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Networks considered (readable or not).
    pub networks: usize,
    /// Networks whose cached analysis was reused unchanged.
    pub reused: usize,
    /// Networks re-analyzed because at least one input file moved.
    pub recomputed: usize,
    /// Config files actually fed to the parser (changed files of
    /// recomputed networks; spliced cache hits are not counted).
    pub files_reparsed: usize,
    /// Networks excluded from the output (unreadable or over the error
    /// budget) — mirrors [`SnapOutcome::dropped`].
    pub dropped: usize,
}

/// The product of one [`DeltaEngine::refresh`]: the same outcome a cold
/// [`snap_dir`](crate::snapshot::snap_dir) would return, the serialized
/// container bytes (byte-identical to `outcome.corpus.to_bytes()`), and
/// the delta statistics.
pub struct Refresh {
    /// Surviving corpus plus dropped networks, exactly as a cold run.
    pub outcome: SnapOutcome,
    /// The container bytes, spliced from cached payloads where possible.
    pub bytes: Vec<u8>,
    /// What the delta pass reused and recomputed.
    pub stats: RefreshStats,
}

/// Cached state of one network between refreshes.
struct NetCache {
    /// `(file_name, size, mtime_nanos)` of every config file at the last
    /// refresh, sorted by name — the no-syscall-beyond-stat skip check.
    /// Empty on a cache seeded from a snapshot (forces one hash pass).
    stats: Vec<(String, u64, u128)>,
    /// Raw-byte FNV-1a-64 per file, in input order.
    hashes: Vec<(String, u64)>,
    /// Parse products aligned with `hashes`; empty when seeded from a
    /// snapshot (raw parse products are not part of the artifact).
    parsed: Vec<PreparsedFile>,
    /// The finished analysis, shared with every corpus handed out — a
    /// reused network costs a refcount bump per refresh, not a deep copy.
    snap: Arc<NetworkSnapshot>,
    /// `snap`'s encoded section payload — the bytes spliced into the
    /// output container when the network is reused.
    payload: Vec<u8>,
}

/// Per-network classification produced by the (cheap, sequential) scan
/// phase of a refresh, before any parallel recomputation.
enum Work {
    /// Inputs unchanged; the cached entry (keyed by name) stands. Fresh
    /// stats ride along when the hash pass proved a stat-moved network
    /// identical (touch, same-byte rewrite).
    Reuse(Option<Vec<(String, u64, u128)>>),
    /// Inputs changed: re-analyze from these files, splicing cached
    /// parse products for files whose hash is unchanged.
    Recompute { stats: Vec<(String, u64, u128)>, files: Vec<(String, Vec<u8>)> },
    /// The network directory could not be read.
    Unreadable(LoadError),
}

/// The incremental re-analysis engine. One engine watches one directory
/// (a single network or a `netN/` study layout, re-detected on every
/// refresh); its cache key is the network name, i.e. the directory
/// basename.
pub struct DeltaEngine {
    dir: PathBuf,
    nets: BTreeMap<String, NetCache>,
}

impl DeltaEngine {
    /// An engine over `dir` with an empty cache: the first
    /// [`refresh`](DeltaEngine::refresh) is a cold run that populates it.
    pub fn new(dir: &Path) -> DeltaEngine {
        DeltaEngine { dir: dir.to_path_buf(), nets: BTreeMap::new() }
    }

    /// The directory this engine analyzes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Seeds the cache from a previously persisted container: each
    /// network's payload bytes come straight from the manifest footer and
    /// its file hashes from [`NetworkSnapshot::file_hashes`], so the next
    /// refresh reuses every network whose files still hash the same —
    /// without re-parsing or re-encoding anything. Returns the number of
    /// networks seeded. The parse-product cache starts empty, so the
    /// first *change* to a seeded network re-parses that network whole.
    pub fn seed_from_snapshot(&mut self, bytes: &[u8]) -> Result<usize, rd_snap::DecodeError> {
        let corpus = Corpus::from_bytes(bytes)?;
        let manifest = Manifest::read(bytes)?;
        let mut nets = BTreeMap::new();
        for snap in corpus.networks {
            let payload = manifest
                .payload(bytes, &snap.name)
                .map(|p| p.to_vec())
                .unwrap_or_else(|| encode_payload(&snap));
            nets.insert(
                snap.name.clone(),
                NetCache {
                    stats: Vec::new(),
                    hashes: snap.file_hashes.clone(),
                    parsed: Vec::new(),
                    snap,
                    payload,
                },
            );
        }
        let count = nets.len();
        self.nets = nets;
        Ok(count)
    }

    /// Brings the cache up to date with the directory and returns the
    /// corpus, container bytes, and delta statistics. The outputs are
    /// byte-identical to a cold [`snap_dir`](crate::snapshot::snap_dir)
    /// + `to_bytes()` of the same directory at any `RD_THREADS`; only
    /// the work done differs. A failure (I/O error in single-network
    /// mode, or a panic out of the pipeline) leaves the cache as it was
    /// — commits happen only after every network's result is in hand.
    pub fn refresh(&mut self) -> Result<Refresh, LoadError> {
        let _span = rd_obs::span!("analyze.incr");
        let started = Instant::now();
        let study = is_study_dir(&self.dir);
        let budget = nettopo::error_budget();
        let name_of = |p: &Path| {
            p.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "network".to_string())
        };
        let units: Vec<(String, PathBuf)> = if study {
            let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&self.dir)
                .map_err(LoadError::Io)?
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            subdirs.sort();
            subdirs.into_iter().map(|p| (name_of(&p), p)).collect()
        } else {
            vec![(name_of(&self.dir), self.dir.clone())]
        };

        // Scan phase (sequential, cheap): stat sweep, then raw-byte
        // hashes only for networks the sweep flagged.
        let mut classified: Vec<(String, Work)> = Vec::with_capacity(units.len());
        for (name, dir) in units {
            let work = self.classify(&name, &dir);
            if let Work::Unreadable(e) = work {
                if !study {
                    // Single-network mode mirrors cold snap_dir: a read
                    // failure is a hard error, not a dropped network.
                    return Err(e);
                }
                classified.push((name, Work::Unreadable(e)));
            } else {
                classified.push((name, work));
            }
        }

        // Recompute phase: the changed networks, in parallel. Results
        // come back in input order, so output never depends on the
        // worker count.
        let todo: Vec<(&str, &[(String, u64, u128)], &[(String, Vec<u8>)])> = classified
            .iter()
            .filter_map(|(name, work)| match work {
                Work::Recompute { stats, files } => {
                    Some((name.as_str(), stats.as_slice(), files.as_slice()))
                }
                _ => None,
            })
            .collect();
        let recomputed = rd_par::par_map(&todo, |_, (name, stats, files)| {
            self.recompute(name, stats, files)
        });

        // Commit phase: splice the new cache together, apply the error
        // budget (study mode only — cold single-network runs never
        // drop), and assemble the output.
        let mut stats = RefreshStats { networks: classified.len(), ..Default::default() };
        let mut fresh = recomputed.into_iter();
        let mut nets = BTreeMap::new();
        let mut dropped = Vec::new();
        let mut dropped_names = BTreeSet::new();
        for (name, work) in classified {
            match work {
                Work::Reuse(new_stats) => {
                    stats.reused += 1;
                    let mut cache = match self.nets.remove(&name) {
                        Some(c) => c,
                        // classify() only returns Reuse for cached names.
                        None => continue,
                    };
                    if let Some(s) = new_stats {
                        cache.stats = s;
                    }
                    nets.insert(name, cache);
                }
                Work::Recompute { .. } => {
                    stats.recomputed += 1;
                    let Some((cache, reparsed)) = fresh.next() else { continue };
                    stats.files_reparsed += reparsed;
                    nets.insert(name, cache);
                }
                Work::Unreadable(e) => {
                    dropped.push(DroppedNetwork {
                        name: name.clone(),
                        total_files: 0,
                        quarantined: 0,
                        reason: format!("network directory unreadable: {e}"),
                    });
                    dropped_names.insert(name);
                }
            }
        }
        if study {
            for (name, cache) in &nets {
                let coverage = &cache.snap.network.coverage;
                if coverage.over_budget(budget) {
                    dropped.push(DroppedNetwork {
                        name: name.clone(),
                        total_files: coverage.total_files,
                        quarantined: coverage.quarantined.len(),
                        reason: format!(
                            "{}/{} files quarantined exceeds error budget {:.0}%",
                            coverage.quarantined.len(),
                            coverage.total_files,
                            budget * 100.0,
                        ),
                    });
                    dropped_names.insert(name.clone());
                }
            }
            // Cold snap_dir reports drops in subdir (name) order; the
            // two loops above may interleave unreadable and over-budget
            // entries out of order.
            dropped.sort_by(|a, b| a.name.cmp(&b.name));
        }
        self.nets = nets;
        stats.dropped = dropped.len();

        let survivors: Vec<&NetCache> = self
            .nets
            .values()
            .filter(|c| !dropped_names.contains(&c.snap.name))
            .collect();
        let sections: Vec<(&str, &[u8])> = survivors
            .iter()
            .map(|c| (c.snap.name.as_str(), c.payload.as_slice()))
            .collect();
        let bytes = assemble_container(&sections);
        let corpus = Corpus::from_shared(survivors.iter().map(|c| c.snap.clone()).collect());

        rd_obs::metrics::counter_add("incr.networks_reused", stats.reused as u64);
        rd_obs::metrics::counter_add("incr.networks_recomputed", stats.recomputed as u64);
        rd_obs::metrics::counter_add("incr.files_reparsed", stats.files_reparsed as u64);
        rd_obs::metrics::gauge_set(
            "incr.last_wall_us",
            started.elapsed().as_micros().min(i64::MAX as u128) as i64,
        );
        rd_obs::trace::event(
            "incr.refresh",
            &[
                ("networks", stats.networks.into()),
                ("reused", stats.reused.into()),
                ("recomputed", stats.recomputed.into()),
                ("files_reparsed", stats.files_reparsed.into()),
            ],
        );
        Ok(Refresh { outcome: SnapOutcome { corpus, dropped }, bytes, stats })
    }

    /// Decides what a single network needs this refresh: nothing (stat
    /// sweep unchanged), nothing but fresh stats (hashes unchanged), or
    /// a recompute from freshly read files.
    fn classify(&self, name: &str, dir: &Path) -> Work {
        let stats = match stat_files(dir) {
            Ok(s) => s,
            Err(e) => return Work::Unreadable(e),
        };
        if let Some(cache) = self.nets.get(name) {
            if !cache.stats.is_empty() && cache.stats == stats {
                return Work::Reuse(None);
            }
        }
        let files = match read_dir_files(dir) {
            Ok(f) => f,
            Err(e) => return Work::Unreadable(e),
        };
        let hashes: Vec<(String, u64)> = files
            .iter()
            .map(|(file, bytes)| (file.clone(), rd_snap::fnv1a64(bytes)))
            .collect();
        if let Some(cache) = self.nets.get(name) {
            if cache.hashes == hashes {
                return Work::Reuse(Some(stats));
            }
        }
        Work::Recompute { stats, files }
    }

    /// Re-analyzes one changed network, splicing cached parse products
    /// for files whose raw hash is unchanged and parsing only the rest.
    /// Returns the new cache entry and the number of files re-parsed.
    fn recompute(
        &self,
        name: &str,
        stats: &[(String, u64, u128)],
        files: &[(String, Vec<u8>)],
    ) -> (NetCache, usize) {
        let hashes: Vec<(String, u64)> = files
            .iter()
            .map(|(file, bytes)| (file.clone(), rd_snap::fnv1a64(bytes)))
            .collect();
        let mut cached: BTreeMap<(&str, u64), &PreparsedFile> = BTreeMap::new();
        if let Some(cache) = self.nets.get(name) {
            if cache.parsed.len() == cache.hashes.len() {
                for ((file, hash), product) in cache.hashes.iter().zip(&cache.parsed) {
                    cached.insert((file.as_str(), *hash), product);
                }
            }
        }
        let mut slots: Vec<Option<PreparsedFile>> = files.iter().map(|_| None).collect();
        let mut fresh_files: Vec<(String, Vec<u8>)> = Vec::new();
        let mut fresh_slots: Vec<usize> = Vec::new();
        for (i, (file, hash)) in hashes.iter().enumerate() {
            match cached.get(&(file.as_str(), *hash)) {
                Some(product) => slots[i] = Some((*product).clone()),
                None => {
                    fresh_slots.push(i);
                    fresh_files.push(files[i].clone());
                }
            }
        }
        let reparsed = fresh_files.len();
        for (i, product) in fresh_slots.into_iter().zip(Network::parse_files(&fresh_files)) {
            slots[i] = Some(product);
        }
        let parsed: Vec<PreparsedFile> = slots.into_iter().flatten().collect();
        let network = Network::from_parsed(parsed.clone());
        let mut analysis = NetworkAnalysis::from_network(network);
        analysis.file_hashes = hashes.clone();
        let snap = Arc::new(capture(name, analysis));
        let payload = encode_payload(&snap);
        (NetCache { stats: stats.to_vec(), hashes, parsed, snap, payload }, reparsed)
    }
}

/// Encodes one network's section payload — the same bytes
/// [`Corpus::to_bytes`] would produce for its section.
fn encode_payload(snap: &NetworkSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    snap.encode(&mut w);
    w.into_bytes()
}

/// `(file_name, size, mtime_nanos)` of every plain file in `dir`,
/// sorted by name — the cheap change sweep.
fn stat_files(dir: &Path) -> Result<Vec<(String, u64, u128)>, LoadError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(LoadError::Io)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .map(|e| e.path())
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let meta = std::fs::metadata(&path).map_err(LoadError::Io)?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        out.push((name, meta.len(), mtime));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::snap_dir;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "rd-incr-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn write_config(dir: &Path, name: &str, text: &str) {
        std::fs::create_dir_all(dir).expect("network dir");
        std::fs::write(dir.join(name), text).expect("write config");
    }

    fn config(host: &str, octet: u8) -> String {
        format!(
            "hostname {host}\n\
             interface Serial0\n ip address 10.0.{octet}.1 255.255.255.252\n\
             router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
        )
    }

    fn study(tag: &str) -> TempDir {
        let tmp = TempDir::new(tag);
        for (net, host) in [("net1", "alpha"), ("net2", "bravo"), ("net3", "charlie")] {
            let dir = tmp.0.join(net);
            write_config(&dir, "config1", &config(host, 1));
            write_config(&dir, "config2", &config(&format!("{host}2"), 2));
        }
        tmp
    }

    fn cold_bytes(dir: &Path) -> Vec<u8> {
        snap_dir(dir).expect("cold snap").corpus.to_bytes()
    }

    #[test]
    fn first_refresh_matches_cold_run() {
        let tmp = study("cold");
        let mut engine = DeltaEngine::new(&tmp.0);
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.bytes, cold_bytes(&tmp.0));
        assert_eq!(refresh.bytes, refresh.outcome.corpus.to_bytes());
        assert_eq!(refresh.stats.networks, 3);
        assert_eq!(refresh.stats.recomputed, 3);
        assert_eq!(refresh.stats.reused, 0);
        assert_eq!(refresh.stats.files_reparsed, 6);
    }

    #[test]
    fn untouched_refresh_reuses_everything() {
        let tmp = study("idle");
        let mut engine = DeltaEngine::new(&tmp.0);
        let first = engine.refresh().expect("first");
        let second = engine.refresh().expect("second");
        assert_eq!(second.bytes, first.bytes);
        assert_eq!(second.stats.reused, 3);
        assert_eq!(second.stats.recomputed, 0);
        assert_eq!(second.stats.files_reparsed, 0);
    }

    #[test]
    fn one_file_change_recomputes_one_network_one_file() {
        let tmp = study("delta");
        let mut engine = DeltaEngine::new(&tmp.0);
        engine.refresh().expect("warm up");
        let changed = tmp.0.join("net2").join("config1");
        let mut text = std::fs::read_to_string(&changed).expect("read");
        text.push_str("interface Loopback0\n ip address 10.9.0.1 255.255.255.255\n");
        std::fs::write(&changed, text).expect("write");

        let refresh = engine.refresh().expect("delta refresh");
        assert_eq!(refresh.stats.recomputed, 1);
        assert_eq!(refresh.stats.reused, 2);
        assert_eq!(refresh.stats.files_reparsed, 1);
        assert_eq!(refresh.bytes, cold_bytes(&tmp.0));
    }

    #[test]
    fn touch_without_content_change_is_reuse() {
        let tmp = study("touch");
        let mut engine = DeltaEngine::new(&tmp.0);
        engine.refresh().expect("warm up");
        // Rewrite identical bytes: size stays, mtime moves.
        let path = tmp.0.join("net1").join("config1");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes).expect("rewrite");
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.stats.reused, 3);
        assert_eq!(refresh.stats.recomputed, 0);
    }

    #[test]
    fn added_and_removed_networks_track_the_directory() {
        let tmp = study("addrm");
        let mut engine = DeltaEngine::new(&tmp.0);
        engine.refresh().expect("warm up");
        write_config(&tmp.0.join("net4"), "config1", &config("delta", 4));
        std::fs::remove_dir_all(tmp.0.join("net1")).expect("remove net1");
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.stats.networks, 3);
        assert_eq!(refresh.stats.recomputed, 1); // net4 is new
        assert_eq!(refresh.stats.reused, 2); // net2 + net3
        assert_eq!(refresh.bytes, cold_bytes(&tmp.0));
        let names: Vec<&str> =
            refresh.outcome.corpus.networks.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["net2", "net3", "net4"]);
    }

    #[test]
    fn snapshot_seeded_engine_reuses_without_parsing() {
        let tmp = study("seed");
        let bytes = cold_bytes(&tmp.0);
        let mut engine = DeltaEngine::new(&tmp.0);
        assert_eq!(engine.seed_from_snapshot(&bytes).expect("seed"), 3);
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.stats.reused, 3);
        assert_eq!(refresh.stats.recomputed, 0);
        assert_eq!(refresh.stats.files_reparsed, 0);
        assert_eq!(refresh.bytes, bytes);
    }

    #[test]
    fn snapshot_seeded_engine_recovers_from_a_change() {
        let tmp = study("seedchg");
        let bytes = cold_bytes(&tmp.0);
        let mut engine = DeltaEngine::new(&tmp.0);
        engine.seed_from_snapshot(&bytes).expect("seed");
        let changed = tmp.0.join("net3").join("config2");
        let mut text = std::fs::read_to_string(&changed).expect("read");
        text.push_str("interface Loopback0\n ip address 10.8.0.1 255.255.255.255\n");
        std::fs::write(&changed, text).expect("write");
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.stats.recomputed, 1);
        // Seeded caches hold no parse products: the whole changed
        // network re-parses, the other two splice through.
        assert_eq!(refresh.stats.files_reparsed, 2);
        assert_eq!(refresh.bytes, cold_bytes(&tmp.0));
    }

    #[test]
    fn single_network_dir_matches_cold_run() {
        let tmp = TempDir::new("single");
        write_config(&tmp.0, "config1", &config("solo", 1));
        write_config(&tmp.0, "config2", &config("solo2", 2));
        let mut engine = DeltaEngine::new(&tmp.0);
        let first = engine.refresh().expect("first");
        assert_eq!(first.bytes, cold_bytes(&tmp.0));
        let second = engine.refresh().expect("second");
        assert_eq!(second.stats.reused, 1);
        assert_eq!(second.bytes, first.bytes);
    }

    #[test]
    fn over_budget_network_drops_exactly_like_cold() {
        let tmp = study("budget");
        let mut engine = DeltaEngine::new(&tmp.0);
        engine.refresh().expect("warm up");
        // Corrupt both files of net2: 2/2 quarantined, over any budget.
        write_config(&tmp.0.join("net2"), "config1", "interface E0\n ip address bad 255.0.0.0\n");
        write_config(&tmp.0.join("net2"), "config2", "interface E0\n ip address bad 255.0.0.0\n");
        let refresh = engine.refresh().expect("refresh");
        assert_eq!(refresh.stats.dropped, 1);
        assert_eq!(refresh.outcome.dropped.len(), 1);
        let cold = snap_dir(&tmp.0).expect("cold");
        assert_eq!(cold.dropped.len(), 1);
        assert_eq!(refresh.outcome.dropped[0].name, cold.dropped[0].name);
        assert_eq!(refresh.outcome.dropped[0].reason, cold.dropped[0].reason);
        assert_eq!(refresh.bytes, cold.corpus.to_bytes());
        // The dropped network stays cached: restoring its files brings
        // it back (recomputed, because its contents changed again).
        write_config(&tmp.0.join("net2"), "config1", &config("bravo", 1));
        write_config(&tmp.0.join("net2"), "config2", &config("bravo2", 2));
        let healed = engine.refresh().expect("healed");
        assert_eq!(healed.stats.dropped, 0);
        assert_eq!(healed.bytes, cold_bytes(&tmp.0));
    }
}
