//! The bridge from the full analysis pipeline to `rd-plan`'s
//! analysis-agnostic planning engine.
//!
//! `rd-plan` sits *below* this crate in the dependency graph (so `rdx`,
//! rd-serve, and rd-bench can all reach it without a cycle) and never
//! parses a config itself; it plans over [`rd_plan::StateFacts`]
//! produced by a caller-supplied closure. This module is that closure:
//! it runs [`NetworkAnalysis`] over a corpus of `(file_name, bytes)`
//! pairs and projects the result — connectivity components, instance
//! membership, border classification, redistribution points, external
//! ASes, parse coverage, and per-router configuration fingerprints —
//! into the planner's fact tables.

use std::collections::BTreeMap;

use nettopo::graph::RouterGraph;
use rd_plan::{CorpusFiles, RouterState, StateFacts};
use routing_model::instance_graph::ExchangeKind;

use crate::diff::{body_fingerprint, config_fingerprint};
use crate::NetworkAnalysis;

/// Projects a completed analysis into the planner's fact tables.
pub fn state_facts(analysis: &NetworkAnalysis) -> StateFacts {
    let graph = RouterGraph::build(&analysis.network, &analysis.links);
    let components = graph.components();
    let mut component_of = BTreeMap::new();
    for (index, members) in components.iter().enumerate() {
        for rid in members {
            component_of.insert(*rid, index);
        }
    }
    let borders = analysis.external.border_routers();
    let mut instance_keys: BTreeMap<_, Vec<String>> = BTreeMap::new();
    let mut instance_counts: BTreeMap<String, usize> = BTreeMap::new();
    for instance in &analysis.instances.list {
        let key = match instance.asn {
            Some(asn) => format!("{}:{asn}", instance.kind),
            None => instance.kind.to_string(),
        };
        *instance_counts.entry(key.clone()).or_insert(0) += 1;
        for rid in &instance.routers {
            instance_keys.entry(*rid).or_default().push(key.clone());
        }
    }
    let mut redistributes: std::collections::BTreeSet<_> = Default::default();
    for edge in &analysis.instance_graph.edges {
        if let ExchangeKind::Redistribution { router, .. } = &edge.kind {
            redistributes.insert(*router);
        }
    }

    let routers = analysis
        .network
        .iter()
        .map(|(rid, router)| {
            let mut keys = instance_keys.remove(&rid).unwrap_or_default();
            keys.sort();
            keys.dedup();
            let mut link_subnets: Vec<String> =
                router.config.interface_subnets().map(|p| p.to_string()).collect();
            link_subnets.sort();
            link_subnets.dedup();
            RouterState {
                name: router.name().to_string(),
                file_name: router.file_name.clone(),
                fingerprint: config_fingerprint(&router.config),
                body_fingerprint: body_fingerprint(&router.config),
                external_facing: borders.contains(&rid),
                redistributes: redistributes.contains(&rid),
                component: component_of.get(&rid).copied().unwrap_or(0),
                instance_keys: keys,
                link_subnets,
            }
        })
        .collect();

    StateFacts {
        routers,
        components: components.len(),
        instance_counts,
        external_ases: analysis.instance_graph.external_ases().into_iter().collect(),
        quarantined: analysis.network.coverage.quarantined.len(),
    }
}

/// The planner's `analyze` closure: full pipeline over in-memory file
/// bytes, projected to fact tables. Infallible — unparseable files land
/// in quarantine and surface through the coverage invariant.
pub fn analyze_files(files: &CorpusFiles) -> StateFacts {
    state_facts(&NetworkAnalysis::from_bytes_list(files.clone()))
}

/// Plans a safe migration between two in-memory corpora using the full
/// analysis pipeline as the verifier.
///
/// Every intermediate state the search evaluates is some mix of
/// `current` and `target` file versions, so each distinct
/// `(file_name, content)` version is parsed **once** up front; the
/// per-state analyses then assemble from the shared parse cache through
/// the same [`nettopo::Network::from_parsed`] path a cold load uses —
/// identical [`StateFacts`], a fraction of the parse work. The
/// topology/routing-model stages still run per state (they are what the
/// plan verifies).
pub fn plan_corpora(
    current: &CorpusFiles,
    target: &CorpusFiles,
) -> Result<rd_plan::Plan, rd_plan::PlanError> {
    // The file-version universe: every distinct (name, raw-FNV) pair
    // either corpus contains, parsed once, in deterministic order.
    let mut versions: BTreeMap<(String, u64), Vec<u8>> = BTreeMap::new();
    for (name, bytes) in current.iter().chain(target.iter()) {
        versions
            .entry((name.clone(), rd_snap::fnv1a64(bytes)))
            .or_insert_with(|| bytes.clone());
    }
    let inputs: Vec<(String, Vec<u8>)> =
        versions.iter().map(|((name, _), bytes)| (name.clone(), bytes.clone())).collect();
    let parsed = nettopo::Network::parse_files(&inputs);
    let cache: BTreeMap<(String, u64), nettopo::PreparsedFile> =
        versions.into_keys().zip(parsed).collect();
    rd_obs::metrics::counter_add("incr.plan_versions_parsed", cache.len() as u64);

    let analyze = move |files: &CorpusFiles| -> StateFacts {
        let mut hashes = Vec::with_capacity(files.len());
        let mut products = Vec::with_capacity(files.len());
        for (name, bytes) in files {
            let hash = rd_snap::fnv1a64(bytes);
            match cache.get(&(name.clone(), hash)) {
                Some(product) => products.push(product.clone()),
                // Unreachable for states the planner materializes (they
                // only combine current/target versions), but stay total.
                None => products.extend(
                    nettopo::Network::parse_files(&[(name.clone(), bytes.clone())]),
                ),
            }
            hashes.push((name.clone(), hash));
        }
        let network = nettopo::Network::from_parsed(products);
        let mut analysis = NetworkAnalysis::from_network(network);
        analysis.file_hashes = hashes;
        state_facts(&analysis)
    };
    rd_plan::plan(current, target, analyze)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(texts: &[(&str, &str)]) -> CorpusFiles {
        texts.iter().map(|(n, t)| (n.to_string(), t.as_bytes().to_vec())).collect()
    }

    #[test]
    fn state_facts_cover_the_planner_axes() {
        let files = corpus(&[
            (
                "a.cfg",
                "hostname alpha\n\
                 interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Serial1\n ip address 192.0.2.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 65010\n",
            ),
            (
                "b.cfg",
                "hostname beta\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n",
            ),
        ]);
        let facts = analyze_files(&files);
        assert_eq!(facts.routers.len(), 2);
        assert_eq!(facts.components, 1);
        assert_eq!(facts.quarantined, 0);
        assert!(facts.external_ases.contains(&65010));
        let alpha = facts.router("alpha").expect("alpha analyzed");
        assert!(alpha.external_facing, "alpha holds the external peering");
        assert!(alpha.instance_keys.iter().any(|k| k.starts_with("ospf")));
        assert!(alpha.link_subnets.iter().any(|s| s.starts_with("10.0.0.0")));
        let beta = facts.router("beta").expect("beta analyzed");
        assert!(!beta.external_facing);
        assert_ne!(alpha.fingerprint, beta.fingerprint);
        // Identical corpus -> identical facts (the determinism the memo
        // and the RD_THREADS gate both lean on).
        let again = analyze_files(&files);
        assert_eq!(facts.routers, again.routers);
    }

    #[test]
    fn cached_plan_matches_uncached_plan() {
        let current = corpus(&[
            (
                "a.cfg",
                "hostname alpha\n\
                 interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n",
            ),
            (
                "b.cfg",
                "hostname beta\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n",
            ),
        ]);
        let mut target = current.clone();
        // beta grows a loopback: one changed file version in the universe.
        target[1].1.extend_from_slice(
            b"interface Loopback0\n ip address 10.9.0.1 255.255.255.255\n",
        );
        // The shared-parse-cache path and the parse-per-state path must
        // produce the same plan, step for step.
        let cached = plan_corpora(&current, &target).expect("cached plan");
        let uncached =
            rd_plan::plan(&current, &target, analyze_files).expect("uncached plan");
        // Everything but the wall-clock timings must agree.
        let strip = |p: &rd_plan::Plan| {
            let text = format!("{p:?}");
            text.split(", timings: ").next().map(str::to_string).unwrap_or(text)
        };
        assert_eq!(strip(&cached), strip(&uncached));
    }
}
