//! Bridging [`NetworkAnalysis`] to the `rd-snap` persistence layer.
//!
//! `rdx snap <dir> -o study.rdsnap` lands here: a config directory (one
//! network, or a study directory of `netN` subdirectories) is analyzed
//! once and serialized; [`restore`] turns a loaded snapshot back into a
//! [`NetworkAnalysis`] without invoking the IOS parser — stage timings
//! are the only field not carried over (the snapshot stores the analysis,
//! not the run that produced it).

use std::path::Path;

use rd_snap::{Corpus, NetworkSnapshot};

use crate::{LoadError, NetworkAnalysis};

/// Converts a finished analysis into its snapshot form, named `name`.
pub fn capture(name: &str, analysis: NetworkAnalysis) -> NetworkSnapshot {
    NetworkSnapshot {
        name: name.to_string(),
        network: analysis.network,
        links: analysis.links,
        external: analysis.external,
        processes: analysis.processes,
        adjacencies: analysis.adjacencies,
        instances: analysis.instances,
        instance_graph: analysis.instance_graph,
        process_graph: analysis.process_graph,
        blocks: analysis.blocks,
        table1: analysis.table1,
        design: analysis.design,
        diagnostics: analysis.diagnostics,
        file_hashes: analysis.file_hashes,
    }
}

/// Like [`capture`], but clones out of a borrowed analysis — for callers
/// that still need the analysis afterwards (e.g. `rdx summary --json`,
/// which prints timings after rendering).
pub fn capture_ref(name: &str, analysis: &NetworkAnalysis) -> NetworkSnapshot {
    NetworkSnapshot {
        name: name.to_string(),
        network: analysis.network.clone(),
        links: analysis.links.clone(),
        external: analysis.external.clone(),
        processes: analysis.processes.clone(),
        adjacencies: analysis.adjacencies.clone(),
        instances: analysis.instances.clone(),
        instance_graph: analysis.instance_graph.clone(),
        process_graph: analysis.process_graph.clone(),
        blocks: analysis.blocks.clone(),
        table1: analysis.table1.clone(),
        design: analysis.design.clone(),
        diagnostics: analysis.diagnostics.clone(),
        file_hashes: analysis.file_hashes.clone(),
    }
}

/// Reconstitutes an analysis from a loaded snapshot. No parsing, no
/// recomputation: every derived product comes straight from the snapshot
/// (`timings` is empty — nothing ran).
pub fn restore(snap: NetworkSnapshot) -> NetworkAnalysis {
    NetworkAnalysis {
        network: snap.network,
        links: snap.links,
        external: snap.external,
        processes: snap.processes,
        adjacencies: snap.adjacencies,
        instances: snap.instances,
        instance_graph: snap.instance_graph,
        process_graph: snap.process_graph,
        blocks: snap.blocks,
        table1: snap.table1,
        design: snap.design,
        diagnostics: snap.diagnostics,
        timings: Default::default(),
        file_hashes: snap.file_hashes,
    }
}

/// True when `dir` looks like a study directory (subdirectories holding
/// config files) rather than a single network's config directory.
pub(crate) fn is_study_dir(dir: &Path) -> bool {
    let mut has_subdir_with_files = false;
    let mut has_plain_file = false;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if std::fs::read_dir(&path)
                    .map(|mut sub| sub.any(|e| e.is_ok_and(|e| e.path().is_file())))
                    .unwrap_or(false)
                {
                    has_subdir_with_files = true;
                }
            } else if path.is_file() {
                has_plain_file = true;
            }
        }
    }
    has_subdir_with_files && !has_plain_file
}

/// One network excluded from a study: either its parse coverage exceeded
/// the error budget (see [`nettopo::error_budget`]) or its directory could
/// not be read at all.
pub struct DroppedNetwork {
    /// Directory basename of the network.
    pub name: String,
    /// Config files found under the network directory (0 when unreadable).
    pub total_files: usize,
    /// How many of those files were quarantined during parsing.
    pub quarantined: usize,
    /// Human-readable explanation of why the network was dropped.
    pub reason: String,
}

/// Result of snapshotting a directory: the corpus of surviving networks
/// plus every network dropped by the error budget. A study run proceeds
/// with the survivors; callers decide how loudly to report the drops
/// (`rdx snap` and `repro` exit non-zero when any network was dropped).
pub struct SnapOutcome {
    /// Snapshots of the networks that stayed within the error budget.
    pub corpus: Corpus,
    /// Networks excluded from the corpus, in name order.
    pub dropped: Vec<DroppedNetwork>,
}

/// Analyzes `dir` — one network, or a whole study directory of `netN`
/// subdirectories (analyzed in parallel with `rd-par`) — and returns the
/// snapshot corpus plus any networks dropped by the error budget. Network
/// names are the directory basenames. Only a top-level read failure of
/// `dir` itself is a hard error; per-network failures degrade or drop that
/// network and the rest of the study proceeds.
pub fn snap_dir(dir: &Path) -> Result<SnapOutcome, LoadError> {
    let name_of = |p: &Path| {
        p.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "network".to_string())
    };
    let budget = nettopo::error_budget();
    if !is_study_dir(dir) {
        let analysis = NetworkAnalysis::from_dir(dir)?;
        return Ok(SnapOutcome {
            corpus: Corpus::new(vec![capture(&name_of(dir), analysis)]),
            dropped: Vec::new(),
        });
    }
    let mut subdirs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(LoadError::Io)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subdirs.sort();
    let results = rd_par::par_map(&subdirs, |_, sub| {
        NetworkAnalysis::from_dir(sub).map(|a| capture(&name_of(sub), a))
    });
    let mut networks = Vec::new();
    let mut dropped = Vec::new();
    for (sub, result) in subdirs.iter().zip(results) {
        let name = name_of(sub);
        match result {
            Ok(snap) => {
                let coverage = &snap.network.coverage;
                if coverage.over_budget(budget) {
                    dropped.push(DroppedNetwork {
                        name,
                        total_files: coverage.total_files,
                        quarantined: coverage.quarantined.len(),
                        reason: format!(
                            "{}/{} files quarantined exceeds error budget {:.0}%",
                            coverage.quarantined.len(),
                            coverage.total_files,
                            budget * 100.0,
                        ),
                    });
                } else {
                    networks.push(snap);
                }
            }
            Err(error) => dropped.push(DroppedNetwork {
                name,
                total_files: 0,
                quarantined: 0,
                reason: format!("network directory unreadable: {error}"),
            }),
        }
    }
    Ok(SnapOutcome { corpus: Corpus::new(networks), dropped })
}
