//! Bridging [`NetworkAnalysis`] to the `rd-snap` persistence layer.
//!
//! `rdx snap <dir> -o study.rdsnap` lands here: a config directory (one
//! network, or a study directory of `netN` subdirectories) is analyzed
//! once and serialized; [`restore`] turns a loaded snapshot back into a
//! [`NetworkAnalysis`] without invoking the IOS parser — stage timings
//! are the only field not carried over (the snapshot stores the analysis,
//! not the run that produced it).

use std::path::Path;

use rd_snap::{Corpus, NetworkSnapshot};

use crate::{LoadError, NetworkAnalysis};

/// Converts a finished analysis into its snapshot form, named `name`.
pub fn capture(name: &str, analysis: NetworkAnalysis) -> NetworkSnapshot {
    NetworkSnapshot {
        name: name.to_string(),
        network: analysis.network,
        links: analysis.links,
        external: analysis.external,
        processes: analysis.processes,
        adjacencies: analysis.adjacencies,
        instances: analysis.instances,
        instance_graph: analysis.instance_graph,
        process_graph: analysis.process_graph,
        blocks: analysis.blocks,
        table1: analysis.table1,
        design: analysis.design,
        diagnostics: analysis.diagnostics,
    }
}

/// Like [`capture`], but clones out of a borrowed analysis — for callers
/// that still need the analysis afterwards (e.g. `rdx summary --json`,
/// which prints timings after rendering).
pub fn capture_ref(name: &str, analysis: &NetworkAnalysis) -> NetworkSnapshot {
    NetworkSnapshot {
        name: name.to_string(),
        network: analysis.network.clone(),
        links: analysis.links.clone(),
        external: analysis.external.clone(),
        processes: analysis.processes.clone(),
        adjacencies: analysis.adjacencies.clone(),
        instances: analysis.instances.clone(),
        instance_graph: analysis.instance_graph.clone(),
        process_graph: analysis.process_graph.clone(),
        blocks: analysis.blocks.clone(),
        table1: analysis.table1.clone(),
        design: analysis.design.clone(),
        diagnostics: analysis.diagnostics.clone(),
    }
}

/// Reconstitutes an analysis from a loaded snapshot. No parsing, no
/// recomputation: every derived product comes straight from the snapshot
/// (`timings` is empty — nothing ran).
pub fn restore(snap: NetworkSnapshot) -> NetworkAnalysis {
    NetworkAnalysis {
        network: snap.network,
        links: snap.links,
        external: snap.external,
        processes: snap.processes,
        adjacencies: snap.adjacencies,
        instances: snap.instances,
        instance_graph: snap.instance_graph,
        process_graph: snap.process_graph,
        blocks: snap.blocks,
        table1: snap.table1,
        design: snap.design,
        diagnostics: snap.diagnostics,
        timings: Default::default(),
    }
}

/// True when `dir` looks like a study directory (subdirectories holding
/// config files) rather than a single network's config directory.
fn is_study_dir(dir: &Path) -> bool {
    let mut has_subdir_with_files = false;
    let mut has_plain_file = false;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if std::fs::read_dir(&path)
                    .map(|mut sub| sub.any(|e| e.is_ok_and(|e| e.path().is_file())))
                    .unwrap_or(false)
                {
                    has_subdir_with_files = true;
                }
            } else if path.is_file() {
                has_plain_file = true;
            }
        }
    }
    has_subdir_with_files && !has_plain_file
}

/// Analyzes `dir` — one network, or a whole study directory of `netN`
/// subdirectories (analyzed in parallel with `rd-par`) — and returns the
/// snapshot corpus. Network names are the directory basenames.
pub fn snap_dir(dir: &Path) -> Result<Corpus, LoadError> {
    let name_of = |p: &Path| {
        p.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "network".to_string())
    };
    if !is_study_dir(dir) {
        let analysis = NetworkAnalysis::from_dir(dir)?;
        return Ok(Corpus::new(vec![capture(&name_of(dir), analysis)]));
    }
    let mut subdirs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(LoadError::Io)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    subdirs.sort();
    let results = rd_par::par_map(&subdirs, |_, sub| {
        NetworkAnalysis::from_dir(sub).map(|a| capture(&name_of(sub), a))
    });
    let mut networks = Vec::with_capacity(results.len());
    for r in results {
        networks.push(r?);
    }
    Ok(Corpus::new(networks))
}
