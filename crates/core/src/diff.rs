//! Longitudinal comparison of routing-design snapshots.
//!
//! Paper Section 8.1: "Snapshots of the routing design over time can be
//! used to track the steps in adding or removing equipment from the
//! network", and Section 8.2 calls the longitudinal study future work.
//! [`DesignDiff`] compares two analyzed snapshots of (nominally) the same
//! network and reports what changed at the design level — routers,
//! instances, external peerings, redistribution points, and
//! classification.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ioscfg::RouterConfig;
use routing_model::instance_graph::ExchangeKind;

use crate::NetworkAnalysis;

/// FNV-1a-64 fingerprint of a router's *parsed* configuration, computed
/// over its canonical snapshot encoding. Cosmetic byte churn — comment
/// lines, `!` separators, whitespace the parser discards — does not move
/// the fingerprint; any semantic change does. Shared groundwork for
/// [`DesignDiff`], the rd-plan change-unit decomposition, and the future
/// incremental re-analysis engine.
pub fn config_fingerprint(config: &RouterConfig) -> u64 {
    rd_snap::fnv1a64(&rd_snap::config_bytes(config))
}

/// [`config_fingerprint`] with the hostname cleared: a removed and an
/// added router with identical *body* fingerprints are the same box
/// under a new name — a rename, not a redesign.
pub fn body_fingerprint(config: &RouterConfig) -> u64 {
    let mut body = config.clone();
    body.hostname = None;
    rd_snap::fnv1a64(&rd_snap::config_bytes(&body))
}

/// A design-level instance signature that is stable across snapshots
/// (ids are not: they renumber when sizes change).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct InstanceSignature {
    /// Protocol family.
    pub kind: String,
    /// BGP AS number if applicable.
    pub asn: Option<u32>,
    /// Hostnames of member routers (sorted) — the stable identity.
    pub members: Vec<String>,
}

/// The differences between two snapshots.
#[derive(Clone, Debug, Default)]
pub struct DesignDiff {
    /// Router hostnames present only in the new snapshot (renames
    /// excluded — see [`routers_renamed`](DesignDiff::routers_renamed)).
    pub routers_added: Vec<String>,
    /// Router hostnames present only in the old snapshot (renames
    /// excluded).
    pub routers_removed: Vec<String>,
    /// Routers present in both snapshots whose configuration fingerprint
    /// changed ([`config_fingerprint`]) — modified in place.
    pub routers_modified: Vec<String>,
    /// `(old, new)` hostname pairs where a removed and an added router
    /// carry an identical body fingerprint: the same configuration under
    /// a new name.
    pub routers_renamed: Vec<(String, String)>,
    /// Instances (by signature) only in the new snapshot.
    pub instances_added: Vec<InstanceSignature>,
    /// Instances only in the old snapshot.
    pub instances_removed: Vec<InstanceSignature>,
    /// External AS numbers newly peered with.
    pub external_as_added: Vec<u32>,
    /// External AS numbers no longer peered with.
    pub external_as_removed: Vec<u32>,
    /// Hostnames of routers that redistribute in the new snapshot but
    /// not the old.
    pub redistributors_added: Vec<String>,
    /// Hostnames of routers that redistributed only in the old snapshot.
    pub redistributors_removed: Vec<String>,
    /// Classification change, if any: `(old, new)`.
    pub class_changed: Option<(String, String)>,
}

impl DesignDiff {
    /// Compares two snapshots (`old` → `new`).
    ///
    /// Routers are matched by hostname (falling back to file name), the
    /// only identity that survives re-collection; instances are matched
    /// by their member-set signature.
    pub fn between(old: &NetworkAnalysis, new: &NetworkAnalysis) -> DesignDiff {
        // name -> (full fingerprint, body fingerprint), the semantic
        // identity of each router's configuration.
        let prints = |a: &NetworkAnalysis| -> BTreeMap<String, (u64, u64)> {
            a.network
                .iter()
                .map(|(_, r)| {
                    (
                        r.name().to_string(),
                        (config_fingerprint(&r.config), body_fingerprint(&r.config)),
                    )
                })
                .collect()
        };
        let (old_prints, new_prints) = (prints(old), prints(new));
        let old_names: BTreeSet<String> = old_prints.keys().cloned().collect();
        let new_names: BTreeSet<String> = new_prints.keys().cloned().collect();

        let routers_modified: Vec<String> = old_names
            .intersection(&new_names)
            .filter(|name| old_prints.get(*name).map(|p| p.0) != new_prints.get(*name).map(|p| p.0))
            .cloned()
            .collect();

        // Rename detection: pair removed and added routers with identical
        // body fingerprints, greedily in sorted order (deterministic).
        let mut routers_removed: Vec<String> =
            old_names.difference(&new_names).cloned().collect();
        let mut routers_added: Vec<String> = new_names.difference(&old_names).cloned().collect();
        let mut routers_renamed: Vec<(String, String)> = Vec::new();
        for added in std::mem::take(&mut routers_added) {
            let body = new_prints.get(&added).map(|p| p.1);
            let matched = routers_removed
                .iter()
                .position(|removed| old_prints.get(removed).map(|p| p.1) == body);
            match matched {
                Some(i) => routers_renamed.push((routers_removed.remove(i), added)),
                None => routers_added.push(added),
            }
        }

        let signatures = |a: &NetworkAnalysis| -> BTreeSet<InstanceSignature> {
            a.instances
                .list
                .iter()
                .map(|i| InstanceSignature {
                    kind: i.kind.to_string(),
                    asn: i.asn,
                    members: i
                        .routers
                        .iter()
                        .map(|r| a.network.router(*r).name().to_string())
                        .collect(),
                })
                .collect()
        };
        let (old_sigs, new_sigs) = (signatures(old), signatures(new));

        let external = |a: &NetworkAnalysis| -> BTreeSet<u32> {
            a.instance_graph.external_ases().into_iter().collect()
        };
        let (old_ext, new_ext) = (external(old), external(new));

        let redistributors = |a: &NetworkAnalysis| -> BTreeSet<String> {
            a.instance_graph
                .edges
                .iter()
                .filter_map(|e| match &e.kind {
                    ExchangeKind::Redistribution { router, .. } => {
                        Some(a.network.router(*router).name().to_string())
                    }
                    _ => None,
                })
                .collect()
        };
        let (old_rd, new_rd) = (redistributors(old), redistributors(new));

        let class_changed = if old.design.class != new.design.class {
            Some((old.design.class.to_string(), new.design.class.to_string()))
        } else {
            None
        };

        DesignDiff {
            routers_added,
            routers_removed,
            routers_modified,
            routers_renamed,
            instances_added: new_sigs.difference(&old_sigs).cloned().collect(),
            instances_removed: old_sigs.difference(&new_sigs).cloned().collect(),
            external_as_added: new_ext.difference(&old_ext).copied().collect(),
            external_as_removed: old_ext.difference(&new_ext).copied().collect(),
            redistributors_added: new_rd.difference(&old_rd).cloned().collect(),
            redistributors_removed: old_rd.difference(&new_rd).cloned().collect(),
            class_changed,
        }
    }

    /// Hostnames of every router this diff touches — added, removed,
    /// modified, or either side of a rename — sorted and deduplicated.
    /// This is the key set the incremental engine and `rdx diff
    /// --networks` feed through [`invalidation_map`] to decide which
    /// networks a change invalidates.
    pub fn touched_routers(&self) -> Vec<String> {
        let mut touched: BTreeSet<String> = BTreeSet::new();
        touched.extend(self.routers_added.iter().cloned());
        touched.extend(self.routers_removed.iter().cloned());
        touched.extend(self.routers_modified.iter().cloned());
        for (old_name, new_name) in &self.routers_renamed {
            touched.insert(old_name.clone());
            touched.insert(new_name.clone());
        }
        touched.into_iter().collect()
    }

    /// True if the snapshots describe the same design.
    pub fn is_empty(&self) -> bool {
        self.routers_added.is_empty()
            && self.routers_removed.is_empty()
            && self.routers_modified.is_empty()
            && self.routers_renamed.is_empty()
            && self.instances_added.is_empty()
            && self.instances_removed.is_empty()
            && self.external_as_added.is_empty()
            && self.external_as_removed.is_empty()
            && self.redistributors_added.is_empty()
            && self.redistributors_removed.is_empty()
            && self.class_changed.is_none()
    }
}

impl fmt::Display for DesignDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "no design-level changes");
        }
        let list = |f: &mut fmt::Formatter<'_>, title: &str, items: &[String]| {
            if items.is_empty() {
                return Ok(());
            }
            writeln!(f, "{title}: {}", items.join(", "))
        };
        list(f, "+ routers", &self.routers_added)?;
        list(f, "- routers", &self.routers_removed)?;
        list(f, "~ routers", &self.routers_modified)?;
        for (old_name, new_name) in &self.routers_renamed {
            writeln!(f, "renamed: {old_name} → {new_name}")?;
        }
        for sig in &self.instances_added {
            writeln!(f, "+ instance {} ({} routers)", label(sig), sig.members.len())?;
        }
        for sig in &self.instances_removed {
            writeln!(f, "- instance {} ({} routers)", label(sig), sig.members.len())?;
        }
        if !self.external_as_added.is_empty() {
            writeln!(f, "+ external peers: {:?}", self.external_as_added)?;
        }
        if !self.external_as_removed.is_empty() {
            writeln!(f, "- external peers: {:?}", self.external_as_removed)?;
        }
        list(f, "+ redistribution points", &self.redistributors_added)?;
        list(f, "- redistribution points", &self.redistributors_removed)?;
        if let Some((old, new)) = &self.class_changed {
            writeln!(f, "classification changed: {old} → {new}")?;
        }
        Ok(())
    }
}

/// Builds the `router hostname → owning network(s)` map over a set of
/// named analyses (e.g. a study corpus). A hostname that appears in more
/// than one network — shared lab fixtures, cloned templates — maps to
/// every owner, in name order. This is the lookup the delta engine and
/// `rdx diff --networks` use to translate a router-level diff into the
/// set of per-network analyses it invalidates.
pub fn invalidation_map<'a>(
    networks: impl IntoIterator<Item = (&'a str, &'a NetworkAnalysis)>,
) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (net_name, analysis) in networks {
        for (_, router) in analysis.network.iter() {
            let owners = map.entry(router.name().to_string()).or_default();
            if !owners.iter().any(|o| o == net_name) {
                owners.push(net_name.to_string());
            }
        }
    }
    for owners in map.values_mut() {
        owners.sort();
    }
    map
}

/// The networks a diff touches: every owner (per [`invalidation_map`])
/// of every router in [`DesignDiff::touched_routers`], sorted and
/// deduplicated. Routers absent from the map (e.g. a hostname that only
/// exists in an un-analyzed target) are skipped — they invalidate
/// nothing that exists yet.
pub fn networks_touched(
    map: &BTreeMap<String, Vec<String>>,
    diff: &DesignDiff,
) -> Vec<String> {
    let mut nets: BTreeSet<String> = BTreeSet::new();
    for router in diff.touched_routers() {
        if let Some(owners) = map.get(&router) {
            nets.extend(owners.iter().cloned());
        }
    }
    nets.into_iter().collect()
}

fn label(sig: &InstanceSignature) -> String {
    match sig.asn {
        Some(asn) => format!("{} AS{asn}", sig.kind),
        None => sig.kind.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_texts() -> Vec<(String, String)> {
        vec![
            (
                "config1".to_string(),
                "hostname alpha\n\
                 interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .to_string(),
            ),
            (
                "config2".to_string(),
                "hostname beta\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .to_string(),
            ),
        ]
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let b = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert!(diff.is_empty(), "{diff}");
        assert_eq!(diff.to_string(), "no design-level changes\n");
    }

    #[test]
    fn added_router_and_peering_detected() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let mut texts = base_texts();
        // beta grows an EBGP peering; a new router gamma joins the OSPF.
        texts[1].1.push_str(
            "interface Serial1\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n",
        );
        texts.push((
            "config3".to_string(),
            "hostname gamma\n\
             interface Serial0\n ip address 10.0.1.1 255.255.255.252\n\
             router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                .to_string(),
        ));
        // gamma links to alpha.
        texts[0].1.push_str(
            "interface Serial1\n ip address 10.0.1.2 255.255.255.252\n",
        );
        let b = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert_eq!(diff.routers_added, vec!["gamma".to_string()]);
        assert!(diff.routers_removed.is_empty());
        assert_eq!(diff.external_as_added, vec![7018]);
        // The OSPF instance's member set changed → old removed, new added.
        assert_eq!(diff.instances_removed.len(), 1);
        assert!(diff.instances_added.len() >= 1);
        let text = diff.to_string();
        assert!(text.contains("+ routers: gamma"));
        assert!(text.contains("external peers: [7018]"));
    }

    #[test]
    fn modified_router_is_not_a_rename() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let mut texts = base_texts();
        // alpha grows a loopback: same name, different fingerprint.
        texts[0].1.push_str("interface Loopback0\n ip address 10.9.0.1 255.255.255.255\n");
        let b = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert_eq!(diff.routers_modified, vec!["alpha".to_string()]);
        assert!(diff.routers_added.is_empty());
        assert!(diff.routers_removed.is_empty());
        assert!(diff.routers_renamed.is_empty());
        assert!(!diff.is_empty());
        assert!(diff.to_string().contains("~ routers: alpha"));
    }

    #[test]
    fn rename_pairs_identical_bodies_instead_of_add_remove() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let mut texts = base_texts();
        // beta keeps its exact configuration body under a new hostname.
        texts[1].1 = texts[1].1.replace("hostname beta", "hostname betamax");
        let b = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert_eq!(diff.routers_renamed, vec![("beta".to_string(), "betamax".to_string())]);
        assert!(diff.routers_added.is_empty(), "{:?}", diff.routers_added);
        assert!(diff.routers_removed.is_empty(), "{:?}", diff.routers_removed);
        assert!(diff.routers_modified.is_empty());
        assert!(diff.to_string().contains("renamed: beta → betamax"));
    }

    #[test]
    fn empty_vs_empty_is_no_change() {
        let a = NetworkAnalysis::from_bytes_list(Vec::new());
        let b = NetworkAnalysis::from_bytes_list(Vec::new());
        let diff = DesignDiff::between(&a, &b);
        assert!(diff.is_empty(), "{diff}");
        assert_eq!(diff.to_string(), "no design-level changes\n");
    }

    #[test]
    fn cosmetic_churn_does_not_move_the_fingerprint() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let mut texts = base_texts();
        // Bang separators and blank lines are parser noise.
        texts[0].1 = texts[0].1.replace("interface Serial0\n", "!\n\ninterface Serial0\n!\n");
        let b = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert!(diff.routers_modified.is_empty(), "{:?}", diff.routers_modified);
        assert!(diff.is_empty(), "{diff}");
    }

    #[test]
    fn touched_routers_cover_every_change_kind() {
        let diff = DesignDiff {
            routers_added: vec!["delta".to_string()],
            routers_removed: vec!["omega".to_string()],
            routers_modified: vec!["alpha".to_string()],
            routers_renamed: vec![("beta".to_string(), "betamax".to_string())],
            ..Default::default()
        };
        assert_eq!(
            diff.touched_routers(),
            vec!["alpha", "beta", "betamax", "delta", "omega"]
        );
        assert!(DesignDiff::default().touched_routers().is_empty());
    }

    #[test]
    fn invalidation_map_routes_a_diff_to_its_networks() {
        let net1 = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let net2 = NetworkAnalysis::from_texts(vec![(
            "config1".to_string(),
            "hostname gamma\n\
             interface Serial0\n ip address 10.1.0.1 255.255.255.252\n\
             router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
                .to_string(),
        )])
        .unwrap();
        let map = invalidation_map([("net1", &net1), ("net2", &net2)]);
        assert_eq!(map.get("alpha"), Some(&vec!["net1".to_string()]));
        assert_eq!(map.get("gamma"), Some(&vec!["net2".to_string()]));

        // alpha grows a loopback: the diff touches net1 and only net1.
        let mut texts = base_texts();
        texts[0]
            .1
            .push_str("interface Loopback0\n ip address 10.9.0.1 255.255.255.255\n");
        let changed = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&net1, &changed);
        assert_eq!(networks_touched(&map, &diff), vec!["net1".to_string()]);
        // An empty diff invalidates nothing.
        let noop = DesignDiff::between(&net1, &net1);
        assert!(networks_touched(&map, &noop).is_empty());
    }

    #[test]
    fn shared_hostname_invalidates_every_owner() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let b = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let map = invalidation_map([("net1", &a), ("net2", &b)]);
        assert_eq!(
            map.get("alpha"),
            Some(&vec!["net1".to_string(), "net2".to_string()])
        );
        let mut texts = base_texts();
        texts[0]
            .1
            .push_str("interface Loopback0\n ip address 10.9.0.1 255.255.255.255\n");
        let changed = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &changed);
        assert_eq!(
            networks_touched(&map, &diff),
            vec!["net1".to_string(), "net2".to_string()]
        );
    }

    #[test]
    fn classification_change_detected() {
        let a = NetworkAnalysis::from_texts(base_texts()).unwrap();
        let mut texts = base_texts();
        texts[1].1.push_str(
            "interface Serial1\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n",
        );
        // Redistribute BGP into the IGP so the design becomes enterprise.
        texts[1].1 = texts[1].1.replace(
            "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n",
            "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n redistribute bgp 65001 subnets\n",
        );
        let b = NetworkAnalysis::from_texts(texts).unwrap();
        let diff = DesignDiff::between(&a, &b);
        assert_eq!(
            diff.class_changed,
            Some(("no-bgp".to_string(), "enterprise".to_string()))
        );
        assert_eq!(diff.redistributors_added, vec!["beta".to_string()]);
    }
}
