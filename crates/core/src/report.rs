//! Report types that render the paper's tables and figures.
//!
//! Each type aggregates one published result over a set of analyzed
//! networks and implements `Display` with the same rows/series the paper
//! reports, so the benchmark harness can print side-by-side
//! paper-vs-measured comparisons.

use std::collections::BTreeMap;
use std::fmt;

use nettopo::stats::{ConfigSizeStats, InterfaceCensus};
use routing_model::{DesignClass, Table1};

use crate::NetworkAnalysis;

/// One named, analyzed network of the study.
pub struct StudyNetwork {
    /// The network's name (`net1`..`net31`).
    pub name: String,
    /// Its full analysis.
    pub analysis: NetworkAnalysis,
}

/// Figure 8: size-distribution histogram buckets (`<10`, `20`, `40`, ...,
/// `>1280`), comparing the study networks against the repository.
#[derive(Clone, Debug, PartialEq)]
pub struct SizeHistogram {
    /// `(label, study fraction, repository fraction)` per bucket.
    pub buckets: Vec<(String, f64, f64)>,
}

impl SizeHistogram {
    /// The paper's bucket boundaries.
    pub const BOUNDS: [usize; 8] = [10, 20, 40, 80, 160, 320, 640, 1280];

    /// Builds the histogram from study sizes and repository sizes.
    pub fn build(study: &[usize], repository: &[usize]) -> SizeHistogram {
        let bucket_of = |n: usize| -> usize {
            Self::BOUNDS.iter().position(|&b| n < b).unwrap_or(Self::BOUNDS.len())
        };
        let mut study_counts = vec![0usize; Self::BOUNDS.len() + 1];
        for &s in study {
            study_counts[bucket_of(s)] += 1;
        }
        let mut repo_counts = vec![0usize; Self::BOUNDS.len() + 1];
        for &s in repository {
            repo_counts[bucket_of(s)] += 1;
        }
        let labels: Vec<String> = std::iter::once("<10".to_string())
            .chain(Self::BOUNDS[1..].iter().map(|b| b.to_string()))
            .chain(std::iter::once(">1280".to_string()))
            .collect();
        let buckets = labels
            .into_iter()
            .enumerate()
            .map(|(i, label)| {
                (
                    label,
                    study_counts[i] as f64 / study.len().max(1) as f64,
                    repo_counts[i] as f64 / repository.len().max(1) as f64,
                )
            })
            .collect();
        SizeHistogram { buckets }
    }
}

impl fmt::Display for SizeHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<8} {:>10} {:>12}", "bucket", "study", "repository")?;
        for (label, s, r) in &self.buckets {
            writeln!(f, "{label:<8} {:>9.1}% {:>11.1}%", s * 100.0, r * 100.0)?;
        }
        Ok(())
    }
}

/// Figure 11: per-network fraction of packet-filter rules on internal
/// links, as a CDF.
#[derive(Clone, Debug, PartialEq)]
pub struct FilterCdf {
    /// Sorted per-network internal fractions (networks without filters are
    /// excluded, as in the paper).
    pub fractions: Vec<f64>,
    /// Networks with no filters at all.
    pub filterless: usize,
}

impl FilterCdf {
    /// Computes the CDF over a set of analyzed networks.
    pub fn build(networks: &[StudyNetwork]) -> FilterCdf {
        let mut fractions = Vec::new();
        let mut filterless = 0usize;
        for n in networks {
            let (internal, total) =
                n.analysis.external.filter_placement(&n.analysis.network);
            if total == 0 {
                filterless += 1;
            } else {
                fractions.push(internal as f64 / total as f64);
            }
        }
        fractions.sort_by(f64::total_cmp);
        FilterCdf { fractions, filterless }
    }

    /// Fraction of (filtered) networks whose internal share is ≥ `x`.
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.fractions.is_empty() {
            return 0.0;
        }
        let count = self.fractions.iter().filter(|&&f| f >= x).count();
        count as f64 / self.fractions.len() as f64
    }

    /// CDF value at `x`: fraction of networks with internal share < `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_least(x)
    }
}

impl fmt::Display for FilterCdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<28} {:>8}", "% rules on internal links", "CDF")?;
        for pct in (0..=100).step_by(10) {
            writeln!(f, "{:<28} {:>7.2}", pct, self.cdf(pct as f64 / 100.0))?;
        }
        writeln!(f, "(networks without filters: {})", self.filterless)
    }
}

/// Section 7: the design-classification summary.
#[derive(Clone, Debug, Default)]
pub struct Section7Report {
    /// Per-class network sizes.
    pub sizes: BTreeMap<DesignClass, Vec<usize>>,
    /// Networks redistributing BGP-learned routes into an IGP.
    pub bgp_into_igp: usize,
}

impl Section7Report {
    /// Builds the summary.
    pub fn build(networks: &[StudyNetwork]) -> Section7Report {
        let mut report = Section7Report::default();
        for n in networks {
            report
                .sizes
                .entry(n.analysis.design.class)
                .or_default()
                .push(n.analysis.network.len());
            if n.analysis.design.bgp_into_igp {
                report.bgp_into_igp += 1;
            }
        }
        for v in report.sizes.values_mut() {
            v.sort_unstable();
        }
        report
    }

    /// Count for one class.
    pub fn count(&self, class: DesignClass) -> usize {
        self.sizes.get(&class).map(|v| v.len()).unwrap_or(0)
    }

    /// Size statistics for one class: `(min, max, mean, median)`.
    pub fn size_stats(&self, class: DesignClass) -> Option<(usize, usize, f64, usize)> {
        let sizes = self.sizes.get(&class)?;
        if sizes.is_empty() {
            return None;
        }
        let min = sizes[0];
        // Invariant: the is_empty() guard above makes last() infallible.
        let max = *sizes.last().expect("non-empty");
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let median = sizes[sizes.len() / 2];
        Some((min, max, mean, median))
    }

    /// The "other" group the paper leaves unclassified: everything except
    /// textbook backbones and enterprises.
    pub fn nonclassic(&self) -> Vec<usize> {
        let mut all = Vec::new();
        for (class, sizes) in &self.sizes {
            if !matches!(class, DesignClass::Backbone | DesignClass::Enterprise) {
                all.extend_from_slice(sizes);
            }
        }
        all.sort_unstable();
        all
    }
}

impl fmt::Display for Section7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>6} {:>8} {:>8} {:>8}", "class", "count", "min", "max", "mean")?;
        for class in [
            DesignClass::Backbone,
            DesignClass::Enterprise,
            DesignClass::Tier2,
            DesignClass::NoBgp,
            DesignClass::Unclassifiable,
        ] {
            if let Some((min, max, mean, _)) = self.size_stats(class) {
                writeln!(
                    f,
                    "{:<16} {:>6} {:>8} {:>8} {:>8.0}",
                    class.to_string(),
                    self.count(class),
                    min,
                    max,
                    mean
                )?;
            }
        }
        writeln!(f, "networks redistributing BGP into an IGP: {}", self.bgp_into_igp)
    }
}

/// The full study report: everything the paper's evaluation publishes,
/// aggregated over the analyzed networks.
pub struct StudyReport {
    /// Table 1 summed over all networks.
    pub table1: Table1,
    /// Table 3 summed over all networks.
    pub census: InterfaceCensus,
    /// Figure 11.
    pub filter_cdf: FilterCdf,
    /// Section 7.
    pub section7: Section7Report,
    /// Per-network router counts (input to Figure 8).
    pub sizes: Vec<(String, usize)>,
}

impl StudyReport {
    /// Aggregates a set of analyzed networks.
    pub fn build(networks: &[StudyNetwork]) -> StudyReport {
        let mut table1 = Table1::default();
        let mut census = InterfaceCensus::default();
        for n in networks {
            table1.add(&n.analysis.table1);
            census.add(&n.analysis.network);
        }
        StudyReport {
            table1,
            census,
            filter_cdf: FilterCdf::build(networks),
            section7: Section7Report::build(networks),
            sizes: networks
                .iter()
                .map(|n| (n.name.clone(), n.analysis.network.len()))
                .collect(),
        }
    }

    /// Figure 8 against a repository size sample.
    pub fn size_histogram(&self, repository: &[usize]) -> SizeHistogram {
        let study: Vec<usize> = self.sizes.iter().map(|(_, s)| *s).collect();
        SizeHistogram::build(&study, repository)
    }
}

/// Renders Table 3 in the paper's ascending-count layout.
pub fn render_table3(census: &InterfaceCensus) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18} {:>8}\n", "Type", "Count"));
    for (label, count) in census.rows_ascending() {
        out.push_str(&format!("{label:<18} {count:>8}\n"));
    }
    out.push_str(&format!("{:<18} {:>8}\n", "total", census.total));
    out.push_str(&format!("unnumbered interfaces: {}\n", census.unnumbered));
    out
}

/// Renders Figure 4 (config-size distribution) as summary rows.
pub fn render_fig4(stats: &ConfigSizeStats) -> String {
    format!(
        "configs: {}\ntotal commands: {}\nmean lines: {:.0}\nmin/median/p90/max: {}/{}/{}/{}\n",
        stats.sizes.len(),
        stats.total_commands,
        stats.mean(),
        stats.min(),
        stats.quantile(0.5),
        stats.quantile(0.9),
        stats.max(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_histogram_buckets() {
        let study = vec![5, 15, 25, 100, 2000];
        let repo = vec![1, 2, 3, 30];
        let h = SizeHistogram::build(&study, &repo);
        assert_eq!(h.buckets.len(), 9);
        assert_eq!(h.buckets[0].0, "<10");
        assert!((h.buckets[0].1 - 0.2).abs() < 1e-9); // one of five
        assert!((h.buckets[0].2 - 0.75).abs() < 1e-9); // three of four
        assert_eq!(h.buckets[8].0, ">1280");
        assert!((h.buckets[8].1 - 0.2).abs() < 1e-9);
        let text = h.to_string();
        assert!(text.contains("repository"));
    }

    #[test]
    fn filter_cdf_math() {
        let cdf = FilterCdf { fractions: vec![0.1, 0.4, 0.5, 0.9], filterless: 1 };
        assert_eq!(cdf.fraction_at_least(0.4), 0.75);
        assert_eq!(cdf.fraction_at_least(0.95), 0.0);
        assert_eq!(cdf.cdf(0.4), 0.25);
        assert!(cdf.to_string().contains("without filters: 1"));
    }

    #[test]
    fn section7_aggregation() {
        // Build two tiny analyzed networks of different classes.
        let nobgp = NetworkAnalysis::from_texts(vec![(
            "config1".to_string(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             router rip\n network 10.0.0.0\n"
                .to_string(),
        )])
        .unwrap();
        let networks =
            vec![StudyNetwork { name: "netA".to_string(), analysis: nobgp }];
        let report = Section7Report::build(&networks);
        assert_eq!(report.count(DesignClass::NoBgp), 1);
        assert_eq!(report.size_stats(DesignClass::NoBgp), Some((1, 1, 1.0, 1)));
        assert_eq!(report.nonclassic(), vec![1]);
        assert!(report.to_string().contains("no-bgp"));
    }

    #[test]
    fn study_report_builds_and_renders() {
        let nobgp = NetworkAnalysis::from_texts(vec![(
            "config1".to_string(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             interface FastEthernet0\n ip address 10.1.0.1 255.255.255.0\n\
             router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"
                .to_string(),
        )])
        .unwrap();
        let networks =
            vec![StudyNetwork { name: "netA".to_string(), analysis: nobgp }];
        let report = StudyReport::build(&networks);
        assert_eq!(report.census.total, 2);
        let table3 = render_table3(&report.census);
        assert!(table3.contains("Serial"));
        let hist = report.size_histogram(&[3, 5, 100]);
        assert_eq!(hist.buckets.len(), 9);
        let stats = ConfigSizeStats::of(&networks[0].analysis.network);
        assert!(render_fig4(&stats).contains("mean lines"));
    }
}
