//! Design-level diagnostics: routing-design smells the abstractions make
//! visible — all warnings, because the configuration is self-consistent
//! but the derived design looks suspicious (paper Section 6's "errors in
//! routing design" direction).
//!
//! Codes:
//!
//! - `redistribute-unknown-source` — a `redistribute` statement names a
//!   process that does not exist on that router; IOS accepts it and it
//!   silently does nothing, so the intended route exchange never happens.
//! - `missing-backbone-area` — a multi-area OSPF instance with no area 0;
//!   inter-area routes will not propagate.
//! - `bgp-no-neighbors` — a BGP process with no `neighbor` statements:
//!   configured but inert.

use ioscfg::RedistSource;
use nettopo::Network;
use rd_obs::{Diagnostic, Severity};

use crate::areas::area_structures;
use crate::instance::Instances;
use crate::process::Processes;

fn warn(file: &str, code: &'static str, message: String) -> Diagnostic {
    Diagnostic { file: file.to_string(), line: 0, severity: Severity::Warning, code, message }
}

/// Collects design-level diagnostics for a network, in deterministic
/// order (process order, then area structures, then BGP stanzas by
/// router).
pub fn design_diagnostics(
    net: &Network,
    procs: &Processes,
    instances: &Instances,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Redistribution statements whose source resolves to no process.
    for p in &procs.list {
        for r in &p.redistributes {
            if matches!(r.source, RedistSource::Connected | RedistSource::Static) {
                continue;
            }
            if procs.resolve_source(p.key.router, r.source).is_none() {
                out.push(warn(
                    &net.router(p.key.router).file_name,
                    "redistribute-unknown-source",
                    format!(
                        "{} redistributes from {}, but no such process exists on this router",
                        p.key.proto, r.source
                    ),
                ));
            }
        }
    }

    // Multi-area OSPF instances missing the backbone area.
    for s in area_structures(net, procs, instances) {
        if !s.is_flat() && !s.has_backbone_area() {
            let file = s
                .areas
                .values()
                .flatten()
                .next()
                .map(|rid| net.router(*rid).file_name.as_str())
                .unwrap_or("<network>");
            let areas: Vec<String> =
                s.areas.keys().map(|a| a.to_string()).collect();
            out.push(warn(
                file,
                "missing-backbone-area",
                format!(
                    "OSPF instance spans areas {} but has no backbone area 0",
                    areas.join(", ")
                ),
            ));
        }
    }

    // BGP processes with no neighbors.
    for (_, router) in net.iter() {
        if let Some(bgp) = &router.config.bgp {
            if bgp.neighbors.is_empty() {
                out.push(warn(
                    &router.file_name,
                    "bgp-no-neighbors",
                    format!("router bgp {} has no neighbor statements", bgp.asn),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use nettopo::{ExternalAnalysis, LinkMap};

    fn diagnose(net: &Network) -> Vec<Diagnostic> {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let instances = Instances::compute(&procs, &adj);
        design_diagnostics(net, &procs, &instances)
    }

    #[test]
    fn design_smells_surface_as_warnings() {
        let text = "\
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
interface Ethernet1
 ip address 10.2.0.1 255.255.255.0
router ospf 1
 network 10.1.0.0 0.0.0.255 area 1
 network 10.2.0.0 0.0.0.255 area 2
 redistribute eigrp 7
router bgp 65000
";
        let net =
            Network::from_texts(vec![("config1".to_string(), text.to_string())]).unwrap();
        let diags = diagnose(&net);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                "redistribute-unknown-source",
                "missing-backbone-area",
                "bgp-no-neighbors",
            ],
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
        assert!(diags.iter().all(|d| d.file == "config1"));
        assert!(diags[0].message.contains("eigrp 7"));
        assert!(diags[1].message.contains("areas 1, 2"));
    }

    #[test]
    fn clean_designs_yield_nothing() {
        let text = "\
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
router ospf 1
 network 10.1.0.0 0.0.0.255 area 0
 redistribute connected
";
        let net =
            Network::from_texts(vec![("config1".to_string(), text.to_string())]).unwrap();
        assert!(diagnose(&net).is_empty());
    }
}
