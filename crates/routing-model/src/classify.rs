//! Design-archetype classification (paper Section 7.1).
//!
//! The paper distinguishes: textbook **backbone** designs (EBGP at the
//! edge, an IBGP mesh distributing external routes, a small number of IGP
//! instances carrying infrastructure routes, and — the hallmark — external
//! routes never redistributed into the IGP); textbook **enterprise**
//! designs (a few border BGP speakers injecting summarized external routes
//! into a small number of IGP instances); **tier-2** providers (backbone
//! BGP structure plus many single-router "staging" IGP instances feeding
//! non-BGP customers); networks that use **no BGP** at all; and the
//! remaining designs "so markedly different both from textbook examples
//! and from each other as to defy classification".

use std::fmt;

use nettopo::Network;

use crate::adjacency::Adjacencies;
use crate::instance::Instances;
use crate::instance_graph::{ExchangeKind, InstanceGraph, InstanceNode};
use crate::process::ProtoKind;
use crate::roles::Table1;

/// The design archetype of one network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DesignClass {
    /// Textbook backbone (Section 3.1's "typical backbone network").
    Backbone,
    /// Textbook enterprise (border BGP redistributed into the IGP).
    Enterprise,
    /// Backbone BGP structure plus many staging IGP instances.
    Tier2,
    /// No BGP anywhere (3 of the paper's 31 networks).
    NoBgp,
    /// None of the above.
    Unclassifiable,
}

impl fmt::Display for DesignClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DesignClass::Backbone => "backbone",
            DesignClass::Enterprise => "enterprise",
            DesignClass::Tier2 => "tier-2",
            DesignClass::NoBgp => "no-bgp",
            DesignClass::Unclassifiable => "unclassifiable",
        };
        f.write_str(s)
    }
}

/// The evidence behind a classification, kept for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DesignSummary {
    /// The verdict.
    pub class: DesignClass,
    /// Router count.
    pub routers: usize,
    /// Routers running BGP.
    pub bgp_speakers: usize,
    /// Distinct internal AS numbers.
    pub internal_ases: usize,
    /// IBGP session count.
    pub ibgp_sessions: usize,
    /// EBGP sessions to external peers.
    pub external_ebgp_sessions: usize,
    /// EBGP sessions between internal routers.
    pub internal_ebgp_sessions: usize,
    /// Multi-router IGP instances.
    pub igp_instances: usize,
    /// Single-router IGP instances facing the outside (staging).
    pub staging_instances: usize,
    /// True if any BGP instance redistributes into any IGP instance.
    pub bgp_into_igp: bool,
    /// Total routing instances.
    pub total_instances: usize,
}

/// Classifies one network's routing design.
pub fn classify_network(
    net: &Network,
    instances: &Instances,
    graph: &InstanceGraph,
    adj: &Adjacencies,
    table1: &Table1,
) -> DesignSummary {
    let routers = net.len();
    let bgp_speakers = net
        .iter()
        .filter(|(_, r)| r.config.bgp.is_some())
        .count();
    let internal_ases = {
        let mut asns: Vec<u32> = net
            .iter()
            .filter_map(|(_, r)| r.config.bgp.as_ref().map(|b| b.asn))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    };
    let staging_instances = instances
        .staging_instances()
        .filter(|i| graph.is_inter_domain(i.id))
        .count();
    let igp_instances = instances
        .list
        .iter()
        .filter(|i| i.kind.is_igp() && i.routers.len() > 1)
        .count();
    let bgp_into_igp = graph.edges.iter().any(|e| {
        matches!(e.kind, ExchangeKind::Redistribution { .. })
            && matches!(
                (e.from, e.to),
                (InstanceNode::Instance(f), InstanceNode::Instance(t))
                    if instances.get(f).kind == ProtoKind::Bgp
                        && instances.get(t).kind.is_igp()
            )
    });

    let summary_base = |class| DesignSummary {
        class,
        routers,
        bgp_speakers,
        internal_ases,
        ibgp_sessions: table1.ibgp_sessions,
        external_ebgp_sessions: table1.ebgp_sessions.inter,
        internal_ebgp_sessions: table1.ebgp_sessions.intra,
        igp_instances,
        staging_instances,
        bgp_into_igp,
        total_instances: instances.len(),
    };

    let _ = adj;

    // No BGP at all.
    if bgp_speakers == 0 {
        return summary_base(DesignClass::NoBgp);
    }

    let has_external_bgp = table1.ebgp_sessions.inter > 0;
    let has_ibgp_mesh = table1.ibgp_sessions > 0;
    let few_igp_instances = igp_instances <= 3;
    let single_as = internal_ases == 1;

    // Tier-2: backbone BGP structure + many staging IGP instances.
    if has_external_bgp && has_ibgp_mesh && staging_instances >= 5 {
        return summary_base(DesignClass::Tier2);
    }

    // Backbone: widespread IBGP, external routes never pushed into IGP.
    let bgp_widespread = bgp_speakers * 2 >= routers && routers >= 2;
    if has_external_bgp
        && has_ibgp_mesh
        && bgp_widespread
        && !bgp_into_igp
        && few_igp_instances
        && single_as
    {
        return summary_base(DesignClass::Backbone);
    }

    // Enterprise: few border BGP speakers injecting into the IGP — and
    // nothing *else* going on. The textbook pattern has a homogeneous IGP
    // and uses redistribution only at the BGP border: compartmentalized
    // designs glued by IGP↔IGP redistribution or internal EBGP are
    // exactly what the paper calls "markedly different from textbook".
    let bgp_confined = bgp_speakers <= 4.max(routers / 10);
    let igp_homogeneous = {
        let kinds: std::collections::BTreeSet<ProtoKind> = instances
            .list
            .iter()
            .filter(|i| i.kind.is_igp() && i.routers.len() > 1)
            .map(|i| i.kind)
            .collect();
        kinds.len() <= 1
    };
    let igp_to_igp_glue = graph.edges.iter().any(|e| {
        matches!(e.kind, ExchangeKind::Redistribution { .. })
            && matches!(
                (e.from, e.to),
                (InstanceNode::Instance(f), InstanceNode::Instance(t))
                    if instances.get(f).kind.is_igp()
                        && instances.get(t).kind.is_igp()
            )
    });
    if has_external_bgp
        && bgp_confined
        && bgp_into_igp
        && few_igp_instances
        && single_as
        && igp_homogeneous
        && !igp_to_igp_glue
        && table1.ebgp_sessions.intra == 0
        && staging_instances == 0
    {
        return summary_base(DesignClass::Enterprise);
    }

    summary_base(DesignClass::Unclassifiable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use crate::instance_graph::InstanceGraph;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    fn classify(net: &Network) -> DesignSummary {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        let graph = InstanceGraph::build(net, &procs, &adj, &inst);
        let t1 = Table1::compute(&inst, &graph, &adj);
        classify_network(net, &inst, &graph, &adj, &t1)
    }

    /// A 3-router textbook backbone: full IBGP mesh, OSPF for
    /// infrastructure, EBGP at the border, no redistribution into OSPF.
    fn backbone() -> Network {
        let mk = |host: u8, peers: &[u8], ext: Option<&str>| {
            let mut t = String::new();
            // Loopback-ish /24 per router for IBGP peering over Ethernet.
            t.push_str(&format!(
                "interface Ethernet0\n ip address 10.0.{host}.1 255.255.255.0\n"
            ));
            // Chain of /30s.
            if host < 3 {
                t.push_str(&format!(
                    "interface Serial0\n ip address 10.9.{host}.1 255.255.255.252\n"
                ));
            }
            if host > 1 {
                let up = host - 1;
                t.push_str(&format!(
                    "interface Serial1\n ip address 10.9.{up}.2 255.255.255.252\n"
                ));
            }
            if let Some(e) = ext {
                t.push_str(&format!(
                    "interface POS3/0\n ip address {e} 255.255.255.252\n"
                ));
            }
            t.push_str("router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n");
            t.push_str("router bgp 65001\n");
            for p in peers {
                t.push_str(&format!(" neighbor 10.0.{p}.1 remote-as 65001\n"));
            }
            if ext.is_some() {
                t.push_str(" neighbor 192.0.2.2 remote-as 7018\n");
            }
            t
        };
        Network::from_texts(vec![
            ("config1".into(), mk(1, &[2, 3], Some("192.0.2.1"))),
            ("config2".into(), mk(2, &[1, 3], None)),
            ("config3".into(), mk(3, &[1, 2], None)),
        ])
        .unwrap()
    }

    #[test]
    fn backbone_classified() {
        let s = classify(&backbone());
        assert_eq!(s.class, DesignClass::Backbone, "summary: {s:?}");
        assert_eq!(s.bgp_speakers, 3);
        assert!(s.ibgp_sessions >= 3);
        assert!(!s.bgp_into_igp);
    }

    /// Border router redistributes BGP into OSPF; interior routers have
    /// no BGP at all.
    fn enterprise() -> Network {
        Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  redistribute bgp 65001 subnets\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.5 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
            (
                "config3".into(),
                "interface Serial0\n ip address 10.0.0.6 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn enterprise_classified() {
        let s = classify(&enterprise());
        assert_eq!(s.class, DesignClass::Enterprise, "summary: {s:?}");
        assert!(s.bgp_into_igp);
        assert_eq!(s.bgp_speakers, 1);
    }

    #[test]
    fn no_bgp_classified() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        assert_eq!(classify(&net).class, DesignClass::NoBgp);
    }

    /// Multiple internal ASes glued by EBGP with IGP redistribution — the
    /// net5 pattern — lands in "unclassifiable".
    #[test]
    fn compartmentalized_design_defies_classification() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n\
                 router eigrp 10\n network 10.1.0.0 0.0.255.255\n \
                  redistribute bgp 65010\n\
                 router bgp 65010\n neighbor 10.0.0.2 remote-as 65020\n \
                  redistribute eigrp 10\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 interface Ethernet0\n ip address 10.2.0.1 255.255.255.0\n\
                 router eigrp 20\n network 10.2.0.0 0.0.255.255\n \
                  redistribute bgp 65020\n\
                 router bgp 65020\n neighbor 10.0.0.1 remote-as 65010\n \
                  redistribute eigrp 20\n"
                    .into(),
            ),
        ])
        .unwrap();
        let s = classify(&net);
        assert_eq!(s.class, DesignClass::Unclassifiable, "summary: {s:?}");
        assert_eq!(s.internal_ases, 2);
        assert_eq!(s.internal_ebgp_sessions, 1);
    }
}
