//! OSPF area structure analysis.
//!
//! The paper's Figure 2 already shows one router in two areas (area 0 and
//! area 11), and hierarchical area design is one of the scalability
//! levers a routing designer has. This module summarizes, per OSPF
//! instance: the areas in use, whether a backbone area exists, and which
//! routers sit on area borders (ABRs — interfaces in two or more areas).

use std::collections::{BTreeMap, BTreeSet};

use ioscfg::OspfArea;
use nettopo::{Network, RouterId};

use crate::instance::{InstanceId, Instances};
use crate::process::{Processes, Proto};

/// The area structure of one OSPF instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaStructure {
    /// The instance.
    pub instance: InstanceId,
    /// Routers per area (a router with interfaces in several areas counts
    /// in each).
    pub areas: BTreeMap<OspfArea, BTreeSet<RouterId>>,
    /// Area border routers: members with covered interfaces in ≥2 areas.
    pub abrs: Vec<RouterId>,
}

impl AreaStructure {
    /// Number of distinct areas.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// True if area 0 (the backbone area) is present.
    pub fn has_backbone_area(&self) -> bool {
        self.areas.contains_key(&OspfArea(0))
    }

    /// True for the flat single-area design.
    pub fn is_flat(&self) -> bool {
        self.area_count() <= 1
    }
}

/// Computes the area structure of every OSPF instance.
pub fn area_structures(
    net: &Network,
    procs: &Processes,
    instances: &Instances,
) -> Vec<AreaStructure> {
    let mut out: BTreeMap<InstanceId, AreaStructure> = BTreeMap::new();

    for p in &procs.list {
        let Proto::Ospf(pid) = p.key.proto else { continue };
        let Some(inst) = instances.instance_of(p.key) else { continue };
        let cfg = &net.router(p.key.router).config;
        let Some(ospf) = cfg.ospf.iter().find(|o| o.id == pid) else { continue };

        let entry = out.entry(inst).or_insert_with(|| AreaStructure {
            instance: inst,
            areas: BTreeMap::new(),
            abrs: Vec::new(),
        });

        // Which areas does this process put this router's interfaces in?
        // The first matching network statement decides per interface
        // (IOS first-match semantics).
        let mut router_areas: BTreeSet<OspfArea> = BTreeSet::new();
        for &idx in &p.covered_ifaces {
            let Some(addr) = cfg.interfaces[idx].address.map(|a| a.addr) else {
                continue;
            };
            if let Some(n) = ospf.networks.iter().find(|n| n.covers(addr)) {
                router_areas.insert(n.area);
            }
        }
        for area in &router_areas {
            entry.areas.entry(*area).or_default().insert(p.key.router);
        }
        if router_areas.len() >= 2 && !entry.abrs.contains(&p.key.router) {
            entry.abrs.push(p.key.router);
        }
    }

    let mut list: Vec<AreaStructure> = out.into_values().collect();
    for s in &mut list {
        s.abrs.sort();
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use nettopo::{ExternalAnalysis, LinkMap};

    fn analyze(net: &Network) -> Vec<AreaStructure> {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        area_structures(net, &procs, &inst)
    }

    #[test]
    fn flat_single_area() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let areas = analyze(&net);
        assert_eq!(areas.len(), 1);
        assert!(areas[0].is_flat());
        assert!(areas[0].has_backbone_area());
        assert!(areas[0].abrs.is_empty());
    }

    #[test]
    fn abr_between_two_areas() {
        // r0 is the ABR: one interface in area 0, one in area 5; r1 is
        // pure area 0, r2 pure area 5.
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.5.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  network 10.5.0.0 0.0.255.255 area 5\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
            (
                "config3".into(),
                "interface Serial0\n ip address 10.5.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.5.0.0 0.0.255.255 area 5\n"
                    .into(),
            ),
        ])
        .unwrap();
        let areas = analyze(&net);
        assert_eq!(areas.len(), 1);
        let s = &areas[0];
        assert_eq!(s.area_count(), 2);
        assert!(s.has_backbone_area());
        assert_eq!(s.abrs, vec![RouterId(0)]);
        assert_eq!(s.areas[&OspfArea(0)].len(), 2);
        assert_eq!(s.areas[&OspfArea(5)].len(), 2);
    }

    #[test]
    fn figure2_router_spans_areas_via_two_processes() {
        // Figure 2's R2 runs two OSPF processes in areas 0 and 11 — two
        // *instances*, each flat, no ABR (different processes, not areas
        // of one process).
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 66.251.75.144 255.255.255.128\n\
             interface Serial0\n ip address 66.253.32.85 255.255.255.252\n\
             router ospf 64\n network 66.251.75.128 0.0.0.127 area 0\n\
             router ospf 128\n network 66.253.32.84 0.0.0.3 area 11\n"
                .into(),
        )])
        .unwrap();
        let areas = analyze(&net);
        assert_eq!(areas.len(), 2);
        assert!(areas.iter().all(|a| a.is_flat()));
        assert!(areas.iter().any(|a| a.has_backbone_area()));
        assert!(areas.iter().any(|a| !a.has_backbone_area()));
    }
}
