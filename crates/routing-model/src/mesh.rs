//! IBGP mesh structure analysis.
//!
//! Section 7.1 notes that the networks redistributing BGP into IGPs
//! "differed in ... the completeness of the IBGP mesh inside the ASs",
//! and Section 6.1 explains why net5 avoided a mesh entirely ("a simple
//! IBGP mesh would not be scalable, and a complex set of IBGP reflectors
//! would be required"). This module measures exactly that per BGP
//! instance: how complete the mesh is, and whether route reflection is in
//! use.

use std::collections::BTreeSet;

use nettopo::{Network, RouterId};

use crate::adjacency::{Adjacencies, SessionScope};
use crate::instance::{InstanceId, Instances, RoutingInstance};

/// The IBGP structure of one BGP instance.
#[derive(Clone, Debug, PartialEq)]
pub struct IbgpMesh {
    /// The instance.
    pub instance: InstanceId,
    /// Routers in the instance.
    pub routers: usize,
    /// IBGP sessions inside the instance.
    pub sessions: usize,
    /// Sessions ÷ (n choose 2): 1.0 = full mesh. 0 for single-router
    /// instances (vacuously complete; see [`IbgpMesh::is_full_mesh`]).
    pub completeness: f64,
    /// Routers configured as route reflectors (they have at least one
    /// `route-reflector-client` neighbor).
    pub reflectors: Vec<RouterId>,
    /// Routers that are clients of some reflector.
    pub clients: usize,
}

impl IbgpMesh {
    /// True if every pair of members has a session (vacuously true for
    /// instances of fewer than two routers).
    pub fn is_full_mesh(&self) -> bool {
        self.routers < 2 || self.completeness >= 1.0
    }

    /// True if the instance uses route reflection instead of a mesh.
    pub fn uses_reflection(&self) -> bool {
        !self.reflectors.is_empty()
    }
}

/// Analyzes the IBGP structure of every multi-router BGP instance.
pub fn ibgp_meshes(
    net: &Network,
    instances: &Instances,
    adj: &Adjacencies,
) -> Vec<IbgpMesh> {
    instances
        .list
        .iter()
        .filter(|i| i.asn.is_some())
        .map(|i| mesh_of(net, i, adj))
        .collect()
}

fn mesh_of(net: &Network, instance: &RoutingInstance, adj: &Adjacencies) -> IbgpMesh {
    let members: BTreeSet<RouterId> = instance.routers.iter().copied().collect();
    let sessions = adj
        .bgp
        .iter()
        .filter(|s| {
            s.scope == SessionScope::Ibgp
                && members.contains(&s.local.router)
                && s.peer.is_some_and(|p| members.contains(&p.router))
        })
        .count();
    let n = members.len();
    let pairs = n * n.saturating_sub(1) / 2;
    let completeness = if pairs == 0 { 0.0 } else { sessions as f64 / pairs as f64 };

    // Reflector detection: a member with any route-reflector-client
    // neighbor statement. Clients: members that appear as somebody's
    // client address.
    let mut reflectors = Vec::new();
    let mut client_addrs: BTreeSet<netaddr::Addr> = BTreeSet::new();
    for &rid in &members {
        let Some(bgp) = &net.router(rid).config.bgp else { continue };
        let client_neighbors: Vec<netaddr::Addr> = bgp
            .neighbors
            .iter()
            .filter(|nb| nb.route_reflector_client)
            .map(|nb| nb.addr)
            .collect();
        if !client_neighbors.is_empty() {
            reflectors.push(rid);
            client_addrs.extend(client_neighbors);
        }
    }
    let clients = members
        .iter()
        .filter(|&&rid| {
            net.router(rid)
                .config
                .interfaces
                .iter()
                .flat_map(|i| i.address.iter().chain(i.secondary.iter()))
                .any(|a| client_addrs.contains(&a.addr))
        })
        .count();

    IbgpMesh {
        instance: instance.id,
        routers: n,
        sessions,
        completeness,
        reflectors,
        clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap};

    fn analyze(net: &Network) -> (Instances, Adjacencies) {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        (inst, adj)
    }

    fn bgp_router(host: u8, peers: &[u8], rr_client_of: &[u8]) -> String {
        let mut t = format!(
            "interface Ethernet0\n ip address 10.0.{host}.1 255.255.255.0\n\
             interface Serial0\n ip address 10.9.{host}.1 255.255.255.252\n"
        );
        // Chain links so everything shares one physical network.
        if host > 1 {
            let up = host - 1;
            t.push_str(&format!(
                "interface Serial1\n ip address 10.9.{up}.2 255.255.255.252\n"
            ));
        }
        t.push_str("router bgp 65001\n");
        for p in peers {
            t.push_str(&format!(" neighbor 10.0.{p}.1 remote-as 65001\n"));
        }
        for p in rr_client_of {
            t.push_str(&format!(" neighbor 10.0.{p}.1 route-reflector-client\n"));
        }
        t
    }

    #[test]
    fn full_mesh_detected() {
        let net = Network::from_texts(vec![
            ("config1".into(), bgp_router(1, &[2, 3], &[])),
            ("config2".into(), bgp_router(2, &[1, 3], &[])),
            ("config3".into(), bgp_router(3, &[1, 2], &[])),
        ])
        .unwrap();
        let (inst, adj) = analyze(&net);
        let meshes = ibgp_meshes(&net, &inst, &adj);
        assert_eq!(meshes.len(), 1);
        assert_eq!(meshes[0].routers, 3);
        assert_eq!(meshes[0].sessions, 3);
        assert!(meshes[0].is_full_mesh());
        assert!(!meshes[0].uses_reflection());
    }

    #[test]
    fn reflection_detected_with_partial_mesh() {
        // Router 1 reflects for 2 and 3; no session between 2 and 3.
        let net = Network::from_texts(vec![
            ("config1".into(), bgp_router(1, &[2, 3], &[2, 3])),
            ("config2".into(), bgp_router(2, &[1], &[])),
            ("config3".into(), bgp_router(3, &[1], &[])),
        ])
        .unwrap();
        let (inst, adj) = analyze(&net);
        let meshes = ibgp_meshes(&net, &inst, &adj);
        assert_eq!(meshes.len(), 1);
        assert_eq!(meshes[0].sessions, 2);
        assert!(!meshes[0].is_full_mesh());
        assert!((meshes[0].completeness - 2.0 / 3.0).abs() < 1e-9);
        assert!(meshes[0].uses_reflection());
        assert_eq!(meshes[0].reflectors, vec![RouterId(0)]);
        assert_eq!(meshes[0].clients, 2);
    }

    #[test]
    fn single_router_instance_is_vacuously_full() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                .into(),
        )])
        .unwrap();
        let (inst, adj) = analyze(&net);
        let meshes = ibgp_meshes(&net, &inst, &adj);
        assert_eq!(meshes.len(), 1);
        assert!(meshes[0].is_full_mesh());
        assert_eq!(meshes[0].sessions, 0);
    }
}
