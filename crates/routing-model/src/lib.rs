//! The paper's four routing-design abstractions, computed from parsed
//! configurations:
//!
//! - [`process`]: routing processes and their RIBs (Figure 3's model —
//!   every routing process, plus a local RIB for connected/static routes
//!   and the router RIB that holds selected routes).
//! - [`adjacency`]: which processes exchange routes directly — IGP
//!   adjacencies over shared links, and BGP sessions (IBGP/EBGP, internal
//!   or to external peers).
//! - [`process_graph`]: the routing process graph (Section 3.1), with
//!   redistribution/selection edges and policy annotations.
//! - [`instance`]: routing instances (Section 3.2) — the transitive
//!   closure of same-protocol adjacency, stopping at protocol-type changes
//!   and at EBGP edges between different ASes.
//! - [`instance_graph`]: the routing instance graph with route-exchange
//!   edges (redistribution and EBGP) and external-AS nodes.
//! - [`pathway`]: route pathway graphs (Section 3.3) — where a given
//!   router's routes can come from.
//! - [`mesh`]: IBGP mesh completeness and route-reflection detection
//!   (Section 7.1's "completeness of the IBGP mesh" dimension).
//! - [`areas`]: OSPF area structure and ABR detection.
//! - [`roles`]: the intra-/inter-domain role classification behind
//!   Table 1.
//! - [`classify`]: the design-archetype classification of Section 7
//!   (textbook backbone, textbook enterprise, tier-2 with staging IGPs,
//!   no-BGP, unclassifiable).
//! - [`diagnose`]: design-level diagnostics (inert redistribution,
//!   missing backbone area, neighborless BGP) on the `rd-obs` channel.
//! - [`render`]: Graphviz DOT output for the three graph abstractions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod areas;
pub mod classify;
pub mod diagnose;
pub mod instance;
pub mod instance_graph;
pub mod mesh;
pub mod pathway;
pub mod process;
pub mod process_graph;
pub mod render;
pub mod roles;

pub use adjacency::{Adjacencies, BgpSession, IgpAdjacency, SessionScope};
pub use areas::{area_structures, AreaStructure};
pub use classify::{classify_network, DesignClass, DesignSummary};
pub use diagnose::design_diagnostics;
pub use instance::{InstanceId, Instances, RoutingInstance};
pub use instance_graph::{ExchangeKind, InstanceEdge, InstanceGraph, InstanceNode};
pub use mesh::{ibgp_meshes, IbgpMesh};
pub use pathway::{PathwayGraph, PathwayIndex, PathwayNode};
pub use process::{ProcKey, Processes, Proto, ProtoKind, RoutingProcess};
pub use process_graph::{EdgeKind, ProcessEdge, ProcessGraph, RibNode};
pub use roles::{RoleCounts, Table1};
