//! The routing instance graph (paper Section 3.2, Figures 6 and 9).
//!
//! Routers and processes are collapsed into their routing instances;
//! the edges that remain are exactly the places where route exchange
//! crosses protocol or AS boundaries: redistribution points, EBGP
//! sessions, and peerings with the external world.

use std::collections::BTreeSet;
use std::fmt;

use nettopo::{Network, RouterId};

use crate::adjacency::{Adjacencies, SessionScope};
use crate::instance::{InstanceId, Instances};
use crate::process::Processes;

/// A node of the instance graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstanceNode {
    /// One of this network's routing instances.
    Instance(InstanceId),
    /// An external AS peered with via EBGP.
    ExternalAs(u32),
    /// The external world reached through an IGP edge (no AS number is
    /// visible when an IGP is used as the edge protocol).
    ExternalWorld,
}

impl fmt::Display for InstanceNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceNode::Instance(id) => write!(f, "{id}"),
            InstanceNode::ExternalAs(asn) => write!(f, "AS{asn}"),
            InstanceNode::ExternalWorld => write!(f, "external world"),
        }
    }
}

/// The mechanism of a route exchange between instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Redistribution inside a router (directed `from` → `to`).
    Redistribution {
        /// The router doing the redistribution.
        router: RouterId,
        /// Policy annotation, if any (route map, tag).
        policy: Option<String>,
    },
    /// An EBGP session (undirected route exchange) between two internal
    /// instances, or to an external AS.
    Ebgp {
        /// The border router on our side.
        router: RouterId,
    },
    /// An IGP adjacency crossing the network boundary.
    IgpEdge {
        /// The router with the external-facing covered interface.
        router: RouterId,
    },
}

/// One edge of the instance graph.
#[derive(Clone, Debug)]
pub struct InstanceEdge {
    /// Source node (direction meaningful only for redistribution).
    pub from: InstanceNode,
    /// Destination node.
    pub to: InstanceNode,
    /// How routes move.
    pub kind: ExchangeKind,
}

impl InstanceEdge {
    /// True for kinds where routes flow in both directions.
    pub fn is_undirected(&self) -> bool {
        !matches!(self.kind, ExchangeKind::Redistribution { .. })
    }
}

/// The instance graph of one network.
#[derive(Clone, Debug, Default)]
pub struct InstanceGraph {
    /// All nodes.
    pub nodes: Vec<InstanceNode>,
    /// All edges (parallel edges preserved: each redistribution router
    /// contributes its own edge — net5's six redundant redistributors
    /// appear as six parallel edges).
    pub edges: Vec<InstanceEdge>,
}

impl InstanceGraph {
    /// Builds the instance graph.
    pub fn build(
        net: &Network,
        procs: &Processes,
        adj: &Adjacencies,
        instances: &Instances,
    ) -> InstanceGraph {
        let mut nodes: BTreeSet<InstanceNode> = instances
            .list
            .iter()
            .map(|i| InstanceNode::Instance(i.id))
            .collect();
        let mut edges = Vec::new();

        // Redistribution edges between instances.
        for p in &procs.list {
            let Some(to_inst) = instances.instance_of(p.key) else { continue };
            for r in &p.redistributes {
                let Some(src_key) = procs.resolve_source(p.key.router, r.source) else {
                    continue; // connected/static: local, not inter-instance
                };
                let Some(from_inst) = instances.instance_of(src_key) else { continue };
                if from_inst == to_inst {
                    continue;
                }
                let mut policy_parts = Vec::new();
                if let Some(m) = &r.route_map {
                    policy_parts.push(format!("route-map {m}"));
                }
                if let Some(t) = r.tag {
                    policy_parts.push(format!("tag {t}"));
                }
                edges.push(InstanceEdge {
                    from: InstanceNode::Instance(from_inst),
                    to: InstanceNode::Instance(to_inst),
                    kind: ExchangeKind::Redistribution {
                        router: p.key.router,
                        policy: if policy_parts.is_empty() {
                            None
                        } else {
                            Some(policy_parts.join(", "))
                        },
                    },
                });
            }
        }

        // EBGP edges (internal between instances, external to peer ASes).
        for s in &adj.bgp {
            match s.scope {
                SessionScope::Ibgp => {} // inside one instance
                SessionScope::EbgpInternal => {
                    let (Some(a), Some(peer)) =
                        (instances.instance_of(s.local), s.peer)
                    else {
                        continue;
                    };
                    let Some(b) = instances.instance_of(peer) else { continue };
                    edges.push(InstanceEdge {
                        from: InstanceNode::Instance(a),
                        to: InstanceNode::Instance(b),
                        kind: ExchangeKind::Ebgp { router: s.local.router },
                    });
                }
                SessionScope::EbgpExternal => {
                    let Some(a) = instances.instance_of(s.local) else { continue };
                    let ext = InstanceNode::ExternalAs(s.remote_as);
                    nodes.insert(ext);
                    edges.push(InstanceEdge {
                        from: InstanceNode::Instance(a),
                        to: ext,
                        kind: ExchangeKind::Ebgp { router: s.local.router },
                    });
                }
            }
        }

        // IGP edges to the external world.
        let mut seen_igp_ext: BTreeSet<(InstanceId, RouterId)> = BTreeSet::new();
        for (key, iref) in &adj.igp_external {
            let Some(inst) = instances.instance_of(*key) else { continue };
            if !seen_igp_ext.insert((inst, iref.router)) {
                continue;
            }
            nodes.insert(InstanceNode::ExternalWorld);
            edges.push(InstanceEdge {
                from: InstanceNode::Instance(inst),
                to: InstanceNode::ExternalWorld,
                kind: ExchangeKind::IgpEdge { router: iref.router },
            });
        }

        let _ = net; // reserved for richer annotations
        InstanceGraph { nodes: nodes.into_iter().collect(), edges }
    }

    /// Edges incident to a node.
    pub fn edges_of(&self, node: InstanceNode) -> impl Iterator<Item = &InstanceEdge> {
        self.edges
            .iter()
            .filter(move |e| e.from == node || e.to == node)
    }

    /// The routers redistributing between two given instances (net5's
    /// redundancy question: 6 routers redistribute between instances 4
    /// and 1).
    pub fn redistribution_routers(
        &self,
        from: InstanceId,
        to: InstanceId,
    ) -> Vec<RouterId> {
        let mut out: Vec<RouterId> = self
            .edges
            .iter()
            .filter_map(|e| match (&e.kind, e.from, e.to) {
                (
                    ExchangeKind::Redistribution { router, .. },
                    InstanceNode::Instance(f),
                    InstanceNode::Instance(t),
                ) if f == from && t == to => Some(*router),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// External ASes this network peers with.
    pub fn external_ases(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                InstanceNode::ExternalAs(asn) => Some(*asn),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether an instance has any edge to the outside world (external
    /// EBGP or IGP edge) — the inter-domain role test of Section 5.2.
    pub fn is_inter_domain(&self, id: InstanceId) -> bool {
        self.edges_of(InstanceNode::Instance(id)).any(|e| {
            matches!(e.from, InstanceNode::ExternalAs(_) | InstanceNode::ExternalWorld)
                || matches!(e.to, InstanceNode::ExternalAs(_) | InstanceNode::ExternalWorld)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instances;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    fn build(net: &Network) -> (Processes, Instances, InstanceGraph) {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        let graph = InstanceGraph::build(net, &procs, &adj, &inst);
        (procs, inst, graph)
    }

    /// The paper's enterprise pattern: border router with EBGP to an
    /// external AS, redistributing into OSPF.
    #[test]
    fn enterprise_pattern_edges() {
        let net = Network::from_texts(vec![
            (
                "config1".into(), // border
                "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  redistribute bgp 65001 subnets\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n \
                  redistribute ospf 1\n"
                    .into(),
            ),
            (
                "config2".into(), // interior
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, inst, graph) = build(&net);
        assert_eq!(inst.len(), 2); // one OSPF (2 routers), one BGP (1 router)
        assert_eq!(graph.external_ases(), vec![7018]);
        // Redistribution edges both directions + EBGP to AS7018.
        let redists = graph
            .edges
            .iter()
            .filter(|e| matches!(e.kind, ExchangeKind::Redistribution { .. }))
            .count();
        assert_eq!(redists, 2);
        let ebgp = graph
            .edges
            .iter()
            .filter(|e| matches!(e.kind, ExchangeKind::Ebgp { .. }))
            .count();
        assert_eq!(ebgp, 1);
        // The BGP instance is inter-domain; OSPF is intra-domain.
        let bgp_inst = inst.list.iter().find(|i| i.asn.is_some()).unwrap();
        let ospf_inst = inst.list.iter().find(|i| i.asn.is_none()).unwrap();
        assert!(graph.is_inter_domain(bgp_inst.id));
        assert!(!graph.is_inter_domain(ospf_inst.id));
    }

    /// Redundant redistribution points show up as parallel edges.
    #[test]
    fn redundant_redistributors_counted() {
        let mk_border = |serial_ip: &str, eth_ip: &str| {
            format!(
                "interface Serial0\n ip address {serial_ip} 255.255.255.252\n\
                 interface Ethernet0\n ip address {eth_ip} 255.255.255.0\n\
                 router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n \
                  redistribute rip\n\
                 router rip\n network 10.2.0.0\n"
            )
        };
        // Two borders redistribute RIP into OSPF; RIP island shared.
        let net = Network::from_texts(vec![
            ("config1".into(), mk_border("10.1.0.1", "10.2.0.1")),
            ("config2".into(), mk_border("10.1.0.5", "10.2.0.2")),
            (
                "config3".into(),
                "interface Serial0\n ip address 10.1.0.2 255.255.255.252\n\
                 interface Serial1\n ip address 10.1.0.6 255.255.255.252\n\
                 router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
            (
                "config4".into(),
                "interface Ethernet0\n ip address 10.2.0.3 255.255.255.0\n\
                 router rip\n network 10.2.0.0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, inst, graph) = build(&net);
        let rip = inst.list.iter().find(|i| i.kind == crate::ProtoKind::Rip).unwrap();
        let ospf = inst.list.iter().find(|i| i.kind == crate::ProtoKind::Ospf).unwrap();
        let routers = graph.redistribution_routers(rip.id, ospf.id);
        assert_eq!(routers.len(), 2);
    }

    #[test]
    fn igp_external_edge_creates_world_node() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let (_, inst, graph) = build(&net);
        assert!(graph.nodes.contains(&InstanceNode::ExternalWorld));
        assert!(graph.is_inter_domain(inst.list[0].id));
    }
}
