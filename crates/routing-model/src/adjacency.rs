//! Routing-process adjacencies (paper Section 2.2).
//!
//! For OSPF/EIGRP/RIP processes to be adjacent, the processes must be of
//! the same type, there must be a link between their routers, and each
//! process must cover its interface on that link (EIGRP additionally
//! requires matching AS numbers, and `passive-interface` suppresses
//! adjacency). Two BGP processes are adjacent when they are explicitly
//! configured to speak to each other.

use std::collections::{BTreeMap, BTreeSet};

use netaddr::{Addr, Prefix};
use nettopo::{ExternalAnalysis, IfaceClass, IfaceRef, LinkMap, Network, RouterId};

use crate::process::{ProcKey, Processes, Proto};

/// One IGP adjacency between two processes over a shared subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IgpAdjacency {
    /// One endpoint (the smaller key).
    pub a: ProcKey,
    /// The other endpoint.
    pub b: ProcKey,
    /// The shared subnet.
    pub subnet: Prefix,
}

/// How a BGP session relates to the network boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionScope {
    /// Same AS on both sides, both inside the corpus.
    Ibgp,
    /// Different ASes, both routers inside the corpus — EBGP used as an
    /// intra-network mechanism (one of the paper's headline findings).
    EbgpInternal,
    /// Peer address not owned by any router in the corpus: a session to
    /// another administrative domain.
    EbgpExternal,
}

/// One BGP session (deduplicated: each internal session appears once).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BgpSession {
    /// The local process (smaller key for internal sessions).
    pub local: ProcKey,
    /// The peer process, when the peer is in the corpus.
    pub peer: Option<ProcKey>,
    /// The configured peer address.
    pub peer_addr: Addr,
    /// The configured remote AS.
    pub remote_as: u32,
    /// Session classification.
    pub scope: SessionScope,
}

/// All adjacencies of a network.
#[derive(Clone, Debug, Default)]
pub struct Adjacencies {
    /// IGP adjacencies (deduplicated, `a < b`).
    pub igp: Vec<IgpAdjacency>,
    /// BGP sessions (deduplicated).
    pub bgp: Vec<BgpSession>,
    /// IGP processes actively covering an external-facing interface —
    /// candidate adjacencies with processes of *other* networks, the
    /// signature of an IGP used in an inter-domain role (Section 5.2).
    pub igp_external: Vec<(ProcKey, IfaceRef)>,
}

impl Adjacencies {
    /// Computes all adjacencies.
    pub fn build(
        net: &Network,
        links: &LinkMap,
        procs: &Processes,
        external: &ExternalAnalysis,
    ) -> Adjacencies {
        let mut out = Adjacencies::default();
        build_igp(links, procs, &mut out);
        build_igp_external(net, procs, external, &mut out);
        build_bgp(net, &mut out);
        out
    }

    /// IGP adjacencies touching a process.
    pub fn igp_neighbors_of(&self, key: ProcKey) -> impl Iterator<Item = ProcKey> + '_ {
        self.igp.iter().filter_map(move |adj| {
            if adj.a == key {
                Some(adj.b)
            } else if adj.b == key {
                Some(adj.a)
            } else {
                None
            }
        })
    }

    /// BGP sessions touching a process (as local or peer).
    pub fn bgp_sessions_of(&self, key: ProcKey) -> impl Iterator<Item = &BgpSession> {
        self.bgp
            .iter()
            .filter(move |s| s.local == key || s.peer == Some(key))
    }
}

/// Whether two same-router-pair processes can be IGP-adjacent.
fn igp_compatible(a: Proto, b: Proto) -> bool {
    match (a, b) {
        (Proto::Ospf(_), Proto::Ospf(_)) => true, // pids have no global meaning
        (Proto::Eigrp(x), Proto::Eigrp(y)) => x == y, // EIGRP requires same AS
        (Proto::Igrp(x), Proto::Igrp(y)) => x == y,
        (Proto::Rip, Proto::Rip) => true,
        _ => false,
    }
}

fn build_igp(links: &LinkMap, procs: &Processes, out: &mut Adjacencies) {
    let mut seen: BTreeSet<(ProcKey, ProcKey, Prefix)> = BTreeSet::new();
    for link in links.links.values() {
        if link.endpoints.len() < 2 {
            continue;
        }
        for (i, ea) in link.endpoints.iter().enumerate() {
            for eb in &link.endpoints[i + 1..] {
                if ea.router == eb.router {
                    continue;
                }
                for pa in procs.on_router(ea.router) {
                    if !pa.key.proto.kind().is_igp() || !pa.active_on(ea.iface) {
                        continue;
                    }
                    for pb in procs.on_router(eb.router) {
                        if !igp_compatible(pa.key.proto, pb.key.proto)
                            || !pb.active_on(eb.iface)
                        {
                            continue;
                        }
                        let (a, b) = if pa.key < pb.key {
                            (pa.key, pb.key)
                        } else {
                            (pb.key, pa.key)
                        };
                        if seen.insert((a, b, link.subnet)) {
                            out.igp.push(IgpAdjacency { a, b, subnet: link.subnet });
                        }
                    }
                }
            }
        }
    }
    out.igp.sort();
}

fn build_igp_external(
    net: &Network,
    procs: &Processes,
    external: &ExternalAnalysis,
    out: &mut Adjacencies,
) {
    for (rid, _) in net.iter() {
        for proc in procs.on_router(rid) {
            if !proc.key.proto.kind().is_igp() {
                continue;
            }
            for &idx in &proc.covered_ifaces {
                if proc.passive_ifaces.contains(&idx) {
                    continue;
                }
                let iref = IfaceRef { router: rid, iface: idx };
                if external.class_of(iref) == IfaceClass::External {
                    out.igp_external.push((proc.key, iref));
                }
            }
        }
    }
}

fn build_bgp(net: &Network, out: &mut Adjacencies) {
    // Address → owning router (primaries and secondaries).
    let mut owner: BTreeMap<Addr, RouterId> = BTreeMap::new();
    for (rid, router) in net.iter() {
        for iface in &router.config.interfaces {
            for a in iface.address.iter().chain(iface.secondary.iter()) {
                owner.insert(a.addr, rid);
            }
        }
    }

    let mut seen: BTreeSet<(ProcKey, ProcKey)> = BTreeSet::new();
    for (rid, router) in net.iter() {
        let Some(bgp) = &router.config.bgp else { continue };
        let local = ProcKey { router: rid, proto: Proto::Bgp(bgp.asn) };
        for n in &bgp.neighbors {
            let Some(remote_as) = n.remote_as else { continue };
            match owner.get(&n.addr) {
                Some(&peer_rid) if peer_rid != rid => {
                    // Internal session. Use the peer's *actual* ASN when it
                    // runs BGP; fall back to the configured remote-as.
                    let peer_asn = net
                        .router(peer_rid)
                        .config
                        .bgp
                        .as_ref()
                        .map(|b| b.asn)
                        .unwrap_or(remote_as);
                    let peer = ProcKey { router: peer_rid, proto: Proto::Bgp(peer_asn) };
                    let (lo, hi) = if local < peer { (local, peer) } else { (peer, local) };
                    if !seen.insert((lo, hi)) {
                        continue;
                    }
                    let scope = if bgp.asn == peer_asn {
                        SessionScope::Ibgp
                    } else {
                        SessionScope::EbgpInternal
                    };
                    out.bgp.push(BgpSession {
                        local: lo,
                        peer: Some(hi),
                        peer_addr: n.addr,
                        remote_as,
                        scope,
                    });
                }
                Some(_) => {} // neighbor pointing at self: ignore
                None => {
                    // Peer outside the corpus: a session to another
                    // administrative domain (even if the configured ASN
                    // matches ours, the router is not in the data set).
                    out.bgp.push(BgpSession {
                        local,
                        peer: None,
                        peer_addr: n.addr,
                        remote_as,
                        scope: SessionScope::EbgpExternal,
                    });
                }
            }
        }
    }
    out.bgp.sort();
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::Network;

    fn analyze(net: &Network) -> (Processes, Adjacencies) {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        (procs, adj)
    }

    #[test]
    fn ospf_adjacency_requires_coverage_on_both_sides() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 64\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 99\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        // Different pids still form an adjacency (pids are router-local).
        assert_eq!(adj.igp.len(), 1);
        assert_eq!(adj.igp[0].subnet.to_string(), "10.0.0.0/30");
    }

    #[test]
    fn no_adjacency_without_coverage() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 64\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 64\n network 192.168.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert!(adj.igp.is_empty());
    }

    #[test]
    fn passive_interface_suppresses_adjacency() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 64\n network 10.0.0.0 0.0.0.3 area 0\n passive-interface Serial0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 64\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert!(adj.igp.is_empty());
    }

    #[test]
    fn eigrp_requires_matching_asn() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router eigrp 100\n network 10.0.0.0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router eigrp 200\n network 10.0.0.0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert!(adj.igp.is_empty());
    }

    #[test]
    fn ospf_never_adjacent_to_rip() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router rip\n network 10.0.0.0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert!(adj.igp.is_empty());
    }

    #[test]
    fn bgp_sessions_classified_and_deduplicated() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Serial1\n ip address 192.0.2.1 255.255.255.252\n\
                 router bgp 65001\n \
                 neighbor 10.0.0.2 remote-as 65001\n \
                 neighbor 192.0.2.2 remote-as 7018\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router bgp 65001\n neighbor 10.0.0.1 remote-as 65001\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert_eq!(adj.bgp.len(), 2);
        let scopes: Vec<SessionScope> = adj.bgp.iter().map(|s| s.scope).collect();
        assert!(scopes.contains(&SessionScope::Ibgp));
        assert!(scopes.contains(&SessionScope::EbgpExternal));
    }

    #[test]
    fn internal_ebgp_detected() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, adj) = analyze(&net);
        assert_eq!(adj.bgp.len(), 1);
        assert_eq!(adj.bgp[0].scope, SessionScope::EbgpInternal);
    }

    #[test]
    fn igp_covering_external_interface_is_flagged() {
        // RIP on a /30 whose other end is missing from the corpus: the
        // classic "IGP as edge protocol to a customer" pattern.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let (procs, adj) = analyze(&net);
        assert_eq!(adj.igp_external.len(), 1);
        assert_eq!(adj.igp_external[0].0, procs.list[0].key);
    }
}
