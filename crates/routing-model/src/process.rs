//! Routing processes and their identities.
//!
//! One router runs any number of routing processes (Figure 2 shows two
//! OSPF processes and a BGP process on a single router). Each process
//! keeps its own RIB; the local RIB holds connected subnets and static
//! routes; route selection fills the router RIB (Figure 3).

use std::collections::BTreeMap;
use std::fmt;

use ioscfg::{RedistSource, RouterConfig};
use nettopo::{Network, RouterId};

/// The protocol family of a process (without instance identifiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtoKind {
    /// OSPFv2.
    Ospf,
    /// EIGRP.
    Eigrp,
    /// Legacy IGRP (counted with EIGRP in the paper's Table 1).
    Igrp,
    /// RIP.
    Rip,
    /// BGP-4.
    Bgp,
}

impl ProtoKind {
    /// True for the protocols conventionally labelled IGPs.
    pub fn is_igp(self) -> bool {
        !matches!(self, ProtoKind::Bgp)
    }

    /// The Table 1 row this protocol contributes to (IGRP folds into
    /// EIGRP, as the paper does).
    pub fn table1_label(self) -> &'static str {
        match self {
            ProtoKind::Ospf => "OSPF",
            ProtoKind::Eigrp | ProtoKind::Igrp => "EIGRP",
            ProtoKind::Rip => "RIP",
            ProtoKind::Bgp => "BGP",
        }
    }
}

impl fmt::Display for ProtoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtoKind::Ospf => "ospf",
            ProtoKind::Eigrp => "eigrp",
            ProtoKind::Igrp => "igrp",
            ProtoKind::Rip => "rip",
            ProtoKind::Bgp => "bgp",
        };
        f.write_str(s)
    }
}

/// The full protocol identity of a process on one router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proto {
    /// `router ospf <pid>`.
    Ospf(u32),
    /// `router eigrp <asn>`.
    Eigrp(u32),
    /// `router igrp <asn>`.
    Igrp(u32),
    /// `router rip`.
    Rip,
    /// `router bgp <asn>`.
    Bgp(u32),
}

impl Proto {
    /// The protocol family.
    pub fn kind(self) -> ProtoKind {
        match self {
            Proto::Ospf(_) => ProtoKind::Ospf,
            Proto::Eigrp(_) => ProtoKind::Eigrp,
            Proto::Igrp(_) => ProtoKind::Igrp,
            Proto::Rip => ProtoKind::Rip,
            Proto::Bgp(_) => ProtoKind::Bgp,
        }
    }

    /// The BGP AS number, if this is a BGP process.
    pub fn bgp_asn(self) -> Option<u32> {
        match self {
            Proto::Bgp(asn) => Some(asn),
            _ => None,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Ospf(id) => write!(f, "ospf {id}"),
            Proto::Eigrp(asn) => write!(f, "eigrp {asn}"),
            Proto::Igrp(asn) => write!(f, "igrp {asn}"),
            Proto::Rip => write!(f, "rip"),
            Proto::Bgp(asn) => write!(f, "bgp AS{asn}"),
        }
    }
}

/// Identifies one routing process: router plus protocol identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcKey {
    /// The router running the process.
    pub router: RouterId,
    /// The protocol identity on that router.
    pub proto: Proto,
}

impl fmt::Display for ProcKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.router, self.proto)
    }
}

/// One routing process, with the interface coverage the analyses need.
#[derive(Clone, Debug)]
pub struct RoutingProcess {
    /// Identity.
    pub key: ProcKey,
    /// Indices (into the router's interface list) of interfaces associated
    /// with this process via `network` statements. Empty for BGP (BGP
    /// associates with neighbors, not interfaces).
    pub covered_ifaces: Vec<usize>,
    /// Of those, the interfaces marked `passive-interface` (no adjacency).
    pub passive_ifaces: Vec<usize>,
    /// Redistribution statements targeting *this* process (i.e. appearing
    /// inside its stanza), with resolved sources.
    pub redistributes: Vec<ioscfg::Redistribution>,
}

impl RoutingProcess {
    /// True if this process actively covers interface `idx` (covered and
    /// not passive).
    pub fn active_on(&self, idx: usize) -> bool {
        self.covered_ifaces.contains(&idx) && !self.passive_ifaces.contains(&idx)
    }
}

/// All routing processes of a network, with lookup by key.
#[derive(Clone, Debug, Default)]
pub struct Processes {
    /// Processes in deterministic order (by key).
    pub list: Vec<RoutingProcess>,
    index: BTreeMap<ProcKey, usize>,
}

impl Processes {
    /// Extracts every routing process from a network's configurations.
    pub fn extract(net: &Network) -> Processes {
        let mut list = Vec::new();
        for (rid, router) in net.iter() {
            extract_router(rid, &router.config, &mut list);
        }
        list.sort_by_key(|p| p.key);
        let index = list.iter().enumerate().map(|(i, p)| (p.key, i)).collect();
        Processes { list, index }
    }

    /// Rebuilds a `Processes` from an already-extracted, key-sorted list
    /// (e.g. one restored from a snapshot). The lookup index is derived
    /// from the list, so the result is identical to the `extract` output
    /// the list came from.
    pub fn from_list(mut list: Vec<RoutingProcess>) -> Processes {
        list.sort_by_key(|p| p.key);
        let index = list.iter().enumerate().map(|(i, p)| (p.key, i)).collect();
        Processes { list, index }
    }

    /// Looks up a process by key.
    pub fn get(&self, key: ProcKey) -> Option<&RoutingProcess> {
        self.index.get(&key).map(|&i| &self.list[i])
    }

    /// The position of a key in `list`.
    pub fn position(&self, key: ProcKey) -> Option<usize> {
        self.index.get(&key).copied()
    }

    /// All processes on one router.
    ///
    /// `list` is sorted by key and `ProcKey` orders by router first, so a
    /// router's processes form one contiguous run found by binary search —
    /// this is on the hot path of adjacency computation over large
    /// corpora.
    pub fn on_router(&self, router: RouterId) -> impl Iterator<Item = &RoutingProcess> {
        let start = self.list.partition_point(|p| p.key.router < router);
        let end = self.list.partition_point(|p| p.key.router <= router);
        self.list[start..end].iter()
    }

    /// Resolves a redistribution source on `router` to a process key.
    /// `Connected`/`Static` resolve to `None` (they live in the local RIB).
    pub fn resolve_source(
        &self,
        router: RouterId,
        source: RedistSource,
    ) -> Option<ProcKey> {
        let proto = match source {
            RedistSource::Connected | RedistSource::Static => return None,
            RedistSource::Ospf(id) => Proto::Ospf(id),
            RedistSource::Eigrp(asn) => Proto::Eigrp(asn),
            RedistSource::Igrp(asn) => Proto::Igrp(asn),
            RedistSource::Rip => Proto::Rip,
            RedistSource::Bgp(asn) => Proto::Bgp(asn),
        };
        let key = ProcKey { router, proto };
        self.get(key).map(|p| p.key)
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if no processes exist.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

fn extract_router(rid: RouterId, cfg: &RouterConfig, out: &mut Vec<RoutingProcess>) {
    let iface_addrs: Vec<Option<netaddr::Addr>> =
        cfg.interfaces.iter().map(|i| i.address.map(|a| a.addr)).collect();

    let covered_by = |covers: &dyn Fn(netaddr::Addr) -> bool| -> Vec<usize> {
        iface_addrs
            .iter()
            .enumerate()
            .filter_map(|(idx, addr)| addr.filter(|a| covers(*a)).map(|_| idx))
            .collect()
    };
    let passive_of = |names: &[ioscfg::InterfaceName]| -> Vec<usize> {
        cfg.interfaces
            .iter()
            .enumerate()
            .filter(|(_, i)| names.contains(&i.name))
            .map(|(idx, _)| idx)
            .collect()
    };

    for p in &cfg.ospf {
        out.push(RoutingProcess {
            key: ProcKey { router: rid, proto: Proto::Ospf(p.id) },
            covered_ifaces: covered_by(&|a| p.covers(a)),
            passive_ifaces: passive_of(&p.passive),
            redistributes: p.redistribute.clone(),
        });
    }
    for p in &cfg.eigrp {
        let proto = if p.is_igrp { Proto::Igrp(p.asn) } else { Proto::Eigrp(p.asn) };
        out.push(RoutingProcess {
            key: ProcKey { router: rid, proto },
            covered_ifaces: covered_by(&|a| p.covers(a)),
            passive_ifaces: passive_of(&p.passive),
            redistributes: p.redistribute.clone(),
        });
    }
    if let Some(p) = &cfg.rip {
        out.push(RoutingProcess {
            key: ProcKey { router: rid, proto: Proto::Rip },
            covered_ifaces: covered_by(&|a| p.covers(a)),
            passive_ifaces: passive_of(&p.passive),
            redistributes: p.redistribute.clone(),
        });
    }
    if let Some(p) = &cfg.bgp {
        out.push(RoutingProcess {
            key: ProcKey { router: rid, proto: Proto::Bgp(p.asn) },
            covered_ifaces: Vec::new(),
            passive_ifaces: Vec::new(),
            redistributes: p.redistribute.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::Network;

    fn sample() -> Network {
        Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             interface Serial0\n ip address 10.0.1.1 255.255.255.252\n\
             router ospf 64\n network 10.0.0.0 0.0.0.255 area 0\n passive-interface Ethernet0\n\
             router ospf 128\n network 10.0.1.0 0.0.0.3 area 1\n\
             router bgp 65001\n redistribute ospf 64\n"
                .into(),
        )])
        .unwrap()
    }

    #[test]
    fn extracts_all_processes() {
        let procs = Processes::extract(&sample());
        assert_eq!(procs.len(), 3);
        let keys: Vec<String> = procs.list.iter().map(|p| p.key.to_string()).collect();
        assert_eq!(keys, vec!["r0:ospf 64", "r0:ospf 128", "r0:bgp AS65001"]);
    }

    #[test]
    fn coverage_and_passivity() {
        let procs = Processes::extract(&sample());
        let ospf64 = procs
            .get(ProcKey { router: RouterId(0), proto: Proto::Ospf(64) })
            .unwrap();
        assert_eq!(ospf64.covered_ifaces, vec![0]);
        assert_eq!(ospf64.passive_ifaces, vec![0]);
        assert!(!ospf64.active_on(0));
        let ospf128 = procs
            .get(ProcKey { router: RouterId(0), proto: Proto::Ospf(128) })
            .unwrap();
        assert!(ospf128.active_on(1));
        assert!(!ospf128.active_on(0));
    }

    #[test]
    fn resolves_redistribution_sources() {
        let procs = Processes::extract(&sample());
        let rid = RouterId(0);
        assert_eq!(
            procs.resolve_source(rid, RedistSource::Ospf(64)),
            Some(ProcKey { router: rid, proto: Proto::Ospf(64) })
        );
        assert_eq!(procs.resolve_source(rid, RedistSource::Ospf(999)), None);
        assert_eq!(procs.resolve_source(rid, RedistSource::Connected), None);
    }

    #[test]
    fn proto_ordering_is_stable() {
        // Ospf < Eigrp < Igrp < Rip < Bgp by declaration order.
        assert!(Proto::Ospf(999) < Proto::Eigrp(1));
        assert!(Proto::Eigrp(999) < Proto::Rip);
        assert!(Proto::Rip < Proto::Bgp(1));
    }

    #[test]
    fn table1_labels() {
        assert_eq!(ProtoKind::Igrp.table1_label(), "EIGRP");
        assert_eq!(ProtoKind::Eigrp.table1_label(), "EIGRP");
        assert!(ProtoKind::Ospf.is_igp());
        assert!(!ProtoKind::Bgp.is_igp());
    }
}
