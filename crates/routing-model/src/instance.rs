//! Routing instances (paper Section 3.2).
//!
//! A routing instance is the set of routing processes that share routing
//! information directly: the transitive closure of same-protocol
//! adjacency, computed by flood fill that stops at protocol-type changes
//! and at EBGP adjacencies between BGP speakers with different AS numbers.
//! Process ids are deliberately ignored — they have no network-wide
//! semantics (the paper shows same-id processes in different instances
//! and different-id processes in the same instance).

use std::collections::BTreeMap;
use std::fmt;

use nettopo::RouterId;

use crate::adjacency::{Adjacencies, SessionScope};
use crate::process::{ProcKey, Processes, ProtoKind};

/// Identifier of a routing instance within one network's analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub usize);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instance {}", self.0)
    }
}

/// One routing instance.
#[derive(Clone, Debug)]
pub struct RoutingInstance {
    /// Stable id (assigned in descending router-count order, so instance 0
    /// is the largest — mirroring how the paper numbers net5's instances).
    pub id: InstanceId,
    /// The protocol family all members share.
    pub kind: ProtoKind,
    /// For BGP instances, the shared AS number.
    pub asn: Option<u32>,
    /// Member processes, sorted.
    pub processes: Vec<ProcKey>,
    /// Distinct routers with a member process, sorted.
    pub routers: Vec<RouterId>,
}

impl RoutingInstance {
    /// Number of routers participating.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// A short human label like `eigrp (445 routers)` or `bgp AS65001`.
    pub fn label(&self) -> String {
        let n = self.routers.len();
        let noun = if n == 1 { "router" } else { "routers" };
        match self.asn {
            Some(asn) => format!("{} AS{asn} ({n} {noun})", self.kind),
            None => format!("{} ({n} {noun})", self.kind),
        }
    }
}

/// The set of routing instances of one network.
#[derive(Clone, Debug, Default)]
pub struct Instances {
    /// Instances, largest first.
    pub list: Vec<RoutingInstance>,
    membership: BTreeMap<ProcKey, InstanceId>,
}

impl Instances {
    /// Computes the instances by union-find over adjacency edges.
    pub fn compute(procs: &Processes, adj: &Adjacencies) -> Instances {
        let n = procs.len();
        let mut uf = UnionFind::new(n);

        // IGP adjacencies merge (same type was already enforced when the
        // adjacency was built).
        for a in &adj.igp {
            let (Some(i), Some(j)) = (procs.position(a.a), procs.position(a.b)) else {
                continue;
            };
            uf.union(i, j);
        }
        // BGP sessions merge only within an AS (IBGP). EBGP — internal or
        // external — is a boundary the flood fill must stop at.
        for s in &adj.bgp {
            if s.scope != SessionScope::Ibgp {
                continue;
            }
            let (Some(peer), Some(i)) = (s.peer, procs.position(s.local)) else { continue };
            let Some(j) = procs.position(peer) else { continue };
            uf.union(i, j);
        }

        // Gather members per root.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            groups.entry(uf.find(i)).or_default().push(i);
        }

        let mut list: Vec<RoutingInstance> = groups
            .into_values()
            .map(|members| {
                let processes: Vec<ProcKey> =
                    members.iter().map(|&i| procs.list[i].key).collect();
                let kind = processes[0].proto.kind();
                let asn = processes[0].proto.bgp_asn();
                let mut routers: Vec<RouterId> =
                    processes.iter().map(|k| k.router).collect();
                routers.sort();
                routers.dedup();
                RoutingInstance {
                    id: InstanceId(0), // assigned below
                    kind,
                    asn,
                    processes,
                    routers,
                }
            })
            .collect();

        // Largest instance first; ties broken by protocol and members for
        // determinism.
        list.sort_by(|a, b| {
            b.routers
                .len()
                .cmp(&a.routers.len())
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.processes.cmp(&b.processes))
        });
        let mut membership = BTreeMap::new();
        for (idx, inst) in list.iter_mut().enumerate() {
            inst.id = InstanceId(idx);
            for p in &inst.processes {
                membership.insert(*p, inst.id);
            }
        }

        Instances { list, membership }
    }

    /// Rebuilds an `Instances` from an already-computed list (e.g. one
    /// restored from a snapshot). Ids are trusted to match list positions
    /// — which `compute` guarantees — and the membership index is derived
    /// from each instance's process set.
    pub fn from_list(list: Vec<RoutingInstance>) -> Instances {
        let mut membership = BTreeMap::new();
        for inst in &list {
            for p in &inst.processes {
                membership.insert(*p, inst.id);
            }
        }
        Instances { list, membership }
    }

    /// The instance a process belongs to.
    pub fn instance_of(&self, key: ProcKey) -> Option<InstanceId> {
        self.membership.get(&key).copied()
    }

    /// The instance by id.
    pub fn get(&self, id: InstanceId) -> &RoutingInstance {
        &self.list[id.0]
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if there are no instances.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Instances of a given protocol family.
    pub fn of_kind(&self, kind: ProtoKind) -> impl Iterator<Item = &RoutingInstance> {
        self.list.iter().filter(move |i| i.kind == kind)
    }

    /// IGP instances that contain exactly one router — the "staging"
    /// instances characteristic of tier-2 providers (Section 7.1).
    pub fn staging_instances(&self) -> impl Iterator<Item = &RoutingInstance> {
        self.list
            .iter()
            .filter(|i| i.kind.is_igp() && i.routers.len() == 1)
    }
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    fn compute(net: &Network) -> (Processes, Instances) {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        (procs, inst)
    }

    /// A 3-router OSPF chain with *different* process ids: one instance.
    #[test]
    fn different_pids_one_instance() {
        let mk = |addr1: &str, addr2: Option<&str>, pid: u32| {
            let mut text = format!(
                "interface Serial0\n ip address {addr1} 255.255.255.252\n"
            );
            if let Some(a2) = addr2 {
                text.push_str(&format!(
                    "interface Serial1\n ip address {a2} 255.255.255.252\n"
                ));
            }
            text.push_str(&format!(
                "router ospf {pid}\n network 10.0.0.0 0.0.255.255 area 0\n"
            ));
            text
        };
        let net = Network::from_texts(vec![
            ("config1".into(), mk("10.0.0.1", None, 7)),
            ("config2".into(), mk("10.0.0.2", Some("10.0.1.1"), 88)),
            ("config3".into(), mk("10.0.1.2", None, 7)),
        ])
        .unwrap();
        let (_, inst) = compute(&net);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.list[0].router_count(), 3);
        assert_eq!(inst.list[0].kind, ProtoKind::Ospf);
    }

    /// Two OSPF islands (no shared link): two instances, even with the
    /// same process id.
    #[test]
    fn same_pid_disconnected_two_instances() {
        let mk = |addr: &str| {
            format!(
                "interface Serial0\n ip address {addr} 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
            )
        };
        let net = Network::from_texts(vec![
            ("config1".into(), mk("10.0.0.1")),
            ("config2".into(), mk("10.0.0.2")),
            ("config3".into(), mk("10.0.9.1")),
            ("config4".into(), mk("10.0.9.2")),
        ])
        .unwrap();
        let (_, inst) = compute(&net);
        assert_eq!(inst.len(), 2);
        assert!(inst.list.iter().all(|i| i.router_count() == 2));
    }

    /// IBGP merges into one instance; EBGP between different internal ASes
    /// stays split (net5's structure in miniature).
    #[test]
    fn ibgp_merges_ebgp_splits() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.1.1 255.255.255.252\n\
                 router bgp 65001\n neighbor 10.0.0.2 remote-as 65001\n \
                 neighbor 10.0.1.2 remote-as 65002\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router bgp 65001\n neighbor 10.0.0.1 remote-as 65001\n"
                    .into(),
            ),
            (
                "config3".into(),
                "interface Serial0\n ip address 10.0.1.2 255.255.255.252\n\
                 router bgp 65002\n neighbor 10.0.1.1 remote-as 65001\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (_, inst) = compute(&net);
        assert_eq!(inst.len(), 2);
        let asns: Vec<Option<u32>> = inst.list.iter().map(|i| i.asn).collect();
        assert!(asns.contains(&Some(65001)));
        assert!(asns.contains(&Some(65002)));
        let big = &inst.list[0];
        assert_eq!(big.router_count(), 2);
        assert_eq!(big.asn, Some(65001));
    }

    /// Instances partition the processes.
    #[test]
    fn instances_partition_processes() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n\
                 router rip\n network 10.0.0.0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (procs, inst) = compute(&net);
        let total: usize = inst.list.iter().map(|i| i.processes.len()).sum();
        assert_eq!(total, procs.len());
        for p in &procs.list {
            assert!(inst.instance_of(p.key).is_some());
        }
        // RIP and OSPF never share an instance.
        for i in &inst.list {
            let kinds: std::collections::BTreeSet<ProtoKind> =
                i.processes.iter().map(|p| p.proto.kind()).collect();
            assert_eq!(kinds.len(), 1);
        }
    }

    /// Single-router IGP instances are recognized as staging instances.
    #[test]
    fn staging_instance_detection() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let (_, inst) = compute(&net);
        assert_eq!(inst.staging_instances().count(), 1);
    }
}
