//! The routing process graph (paper Section 3.1, Figures 3 and 5).
//!
//! Vertices are RIBs: one per routing process, plus each router's local
//! RIB (connected subnets and static routes) and its router RIB (the
//! routes actually used for forwarding). Edges are added wherever routes
//! can move between RIBs: protocol adjacencies and BGP sessions between
//! routers, route redistribution inside a router, and route selection
//! into the router RIB. Policies annotate edges.

use std::collections::BTreeMap;
use std::fmt;

use nettopo::{Network, RouterId};

use crate::adjacency::{Adjacencies, SessionScope};
use crate::process::{ProcKey, Processes};

/// A vertex of the process graph: one RIB.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RibNode {
    /// A routing process's RIB.
    Process(ProcKey),
    /// The local RIB holding connected subnets and static routes.
    Local(RouterId),
    /// The router RIB that stores selected routes used for forwarding.
    RouterRib(RouterId),
}

impl RibNode {
    /// The router this RIB lives on.
    pub fn router(&self) -> RouterId {
        match self {
            RibNode::Process(k) => k.router,
            RibNode::Local(r) | RibNode::RouterRib(r) => *r,
        }
    }
}

impl fmt::Display for RibNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibNode::Process(k) => write!(f, "{k}"),
            RibNode::Local(r) => write!(f, "{r}:local"),
            RibNode::RouterRib(r) => write!(f, "{r}:RIB"),
        }
    }
}

/// What kind of route movement an edge represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// An IGP adjacency (undirected: routes flow both ways).
    Adjacency,
    /// A BGP session, with its scope.
    Session(SessionScope),
    /// Route redistribution inside one router (directed).
    Redistribution,
    /// Route selection into the router RIB (directed).
    Selection,
}

/// One edge of the process graph.
#[derive(Clone, Debug)]
pub struct ProcessEdge {
    /// Source RIB (for undirected kinds, the smaller endpoint).
    pub from: RibNode,
    /// Destination RIB.
    pub to: RibNode,
    /// The kind of route movement.
    pub kind: EdgeKind,
    /// Human-readable policy annotation (route maps, distribute lists,
    /// tags) if any policy governs this edge.
    pub policy: Option<String>,
}

impl ProcessEdge {
    /// True for kinds where routes flow in both directions.
    pub fn is_undirected(&self) -> bool {
        matches!(self.kind, EdgeKind::Adjacency | EdgeKind::Session(_))
    }
}

/// The routing process graph of one network.
#[derive(Clone, Debug, Default)]
pub struct ProcessGraph {
    /// All vertices, sorted.
    pub nodes: Vec<RibNode>,
    /// All edges.
    pub edges: Vec<ProcessEdge>,
}

impl ProcessGraph {
    /// Builds the graph from processes and adjacencies.
    pub fn build(net: &Network, procs: &Processes, adj: &Adjacencies) -> ProcessGraph {
        let mut nodes: Vec<RibNode> = Vec::new();
        for p in &procs.list {
            nodes.push(RibNode::Process(p.key));
        }
        for (rid, _) in net.iter() {
            nodes.push(RibNode::Local(rid));
            nodes.push(RibNode::RouterRib(rid));
        }
        nodes.sort();

        let mut edges = Vec::new();

        // IGP adjacencies.
        for a in &adj.igp {
            edges.push(ProcessEdge {
                from: RibNode::Process(a.a),
                to: RibNode::Process(a.b),
                kind: EdgeKind::Adjacency,
                policy: None,
            });
        }

        // BGP sessions (internal both-ends; external sessions appear in
        // the instance graph instead, since the far RIB is not ours).
        for s in &adj.bgp {
            if let Some(peer) = s.peer {
                edges.push(ProcessEdge {
                    from: RibNode::Process(s.local),
                    to: RibNode::Process(peer),
                    kind: EdgeKind::Session(s.scope),
                    policy: session_policy(net, s.local, s.peer_addr),
                });
            }
        }

        // Redistribution and selection.
        for p in &procs.list {
            let rid = p.key.router;
            for r in &p.redistributes {
                let from = match procs.resolve_source(rid, r.source) {
                    Some(src) => RibNode::Process(src),
                    None => RibNode::Local(rid),
                };
                edges.push(ProcessEdge {
                    from,
                    to: RibNode::Process(p.key),
                    kind: EdgeKind::Redistribution,
                    policy: redist_policy(r),
                });
            }
            edges.push(ProcessEdge {
                from: RibNode::Process(p.key),
                to: RibNode::RouterRib(rid),
                kind: EdgeKind::Selection,
                policy: None,
            });
        }
        for (rid, _) in net.iter() {
            edges.push(ProcessEdge {
                from: RibNode::Local(rid),
                to: RibNode::RouterRib(rid),
                kind: EdgeKind::Selection,
                policy: None,
            });
        }

        ProcessGraph { nodes, edges }
    }

    /// Edges incident to a node.
    pub fn edges_of(&self, node: RibNode) -> impl Iterator<Item = &ProcessEdge> {
        self.edges
            .iter()
            .filter(move |e| e.from == node || e.to == node)
    }

    /// Nodes grouped by router (for per-router rendering).
    pub fn by_router(&self) -> BTreeMap<RouterId, Vec<RibNode>> {
        let mut map: BTreeMap<RouterId, Vec<RibNode>> = BTreeMap::new();
        for n in &self.nodes {
            map.entry(n.router()).or_default().push(*n);
        }
        map
    }
}

/// Annotation text for a redistribution edge.
fn redist_policy(r: &ioscfg::Redistribution) -> Option<String> {
    let mut parts = Vec::new();
    if let Some(map) = &r.route_map {
        parts.push(format!("route-map {map}"));
    }
    if let Some(tag) = r.tag {
        parts.push(format!("tag {tag}"));
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(", "))
    }
}

/// Annotation text for a BGP session edge: the local side's per-neighbor
/// policies.
fn session_policy(net: &Network, local: ProcKey, peer_addr: netaddr::Addr) -> Option<String> {
    let bgp = net.router(local.router).config.bgp.as_ref()?;
    let n = bgp.neighbors.iter().find(|n| n.addr == peer_addr)?;
    let mut parts = Vec::new();
    if let Some(m) = &n.route_map_in {
        parts.push(format!("route-map {m} in"));
    }
    if let Some(m) = &n.route_map_out {
        parts.push(format!("route-map {m} out"));
    }
    if let Some(d) = n.distribute_in {
        parts.push(format!("distribute-list {d} in"));
    }
    if let Some(d) = n.distribute_out {
        parts.push(format!("distribute-list {d} out"));
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    /// The paper's R2 (Figure 2/3): two OSPF processes, one BGP process,
    /// local RIB, router RIB, with redistribution arrows as in Figure 3.
    fn r2_like() -> (Network, ProcessGraph) {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 66.251.75.144 255.255.255.128\n\
             interface Serial1/0.5 point-to-point\n ip address 66.253.32.85 255.255.255.252\n\
             interface Hssi2/0 point-to-point\n ip address 66.253.160.67 255.255.255.252\n\
             router ospf 64\n redistribute connected metric-type 1 subnets\n \
              redistribute bgp 64780 metric 1 subnets\n network 66.251.75.128 0.0.0.127 area 0\n\
             router ospf 128\n redistribute connected metric-type 1 subnets\n\
              network 66.253.32.84 0.0.0.3 area 11\n\
             router bgp 64780\n redistribute ospf 64 route-map 8aTzlvBrbaW\n \
              neighbor 66.253.160.68 remote-as 12762\n"
                .into(),
        )])
        .unwrap();
        let links = LinkMap::build(&net);
        let external = ExternalAnalysis::build(&net, &links);
        let procs = Processes::extract(&net);
        let adj = Adjacencies::build(&net, &links, &procs, &external);
        let graph = ProcessGraph::build(&net, &procs, &adj);
        (net, graph)
    }

    #[test]
    fn figure3_node_set() {
        let (_, g) = r2_like();
        // 3 process RIBs + local + router RIB.
        assert_eq!(g.nodes.len(), 5);
        assert_eq!(
            g.nodes.iter().filter(|n| matches!(n, RibNode::Process(_))).count(),
            3
        );
    }

    #[test]
    fn figure3_redistribution_edges() {
        let (_, g) = r2_like();
        let redists: Vec<&ProcessEdge> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Redistribution)
            .collect();
        // connected→ospf64, bgp→ospf64, connected→ospf128, ospf64→bgp.
        assert_eq!(redists.len(), 4);
        let from_local =
            redists.iter().filter(|e| matches!(e.from, RibNode::Local(_))).count();
        assert_eq!(from_local, 2);
        // The ospf64→bgp edge carries the route-map annotation.
        let policied: Vec<_> = redists.iter().filter(|e| e.policy.is_some()).collect();
        assert_eq!(policied.len(), 1);
        assert!(policied[0].policy.as_ref().unwrap().contains("8aTzlvBrbaW"));
    }

    #[test]
    fn selection_edges_into_router_rib() {
        let (_, g) = r2_like();
        let selections = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Selection)
            .count();
        // 3 processes + local RIB.
        assert_eq!(selections, 4);
    }

    #[test]
    fn edges_of_filters_by_incidence() {
        let (_, g) = r2_like();
        let rib = RibNode::RouterRib(RouterId(0));
        assert_eq!(g.edges_of(rib).count(), 4);
    }
}
