//! Graphviz DOT and plain-text rendering of the three graph abstractions.
//!
//! The paper communicates designs through pictures (Figures 5, 6, 7, 9,
//! 10, 12); these renderers produce the same pictures as DOT for graphviz
//! and as indented text for terminals and tests.

use std::fmt::Write as _;

use nettopo::Network;

use crate::instance::Instances;
use crate::instance_graph::{ExchangeKind, InstanceGraph, InstanceNode};
use crate::pathway::PathwayGraph;
use crate::process_graph::{EdgeKind, ProcessGraph};

/// Renders a process graph (Figure 5 style) as DOT, grouping each
/// router's RIBs into a cluster.
pub fn process_graph_dot(net: &Network, graph: &ProcessGraph) -> String {
    let mut out = String::from("digraph process_graph {\n  rankdir=LR;\n  node [shape=box];\n");
    for (rid, nodes) in graph.by_router() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", rid.0);
        let _ = writeln!(out, "    label=\"{}\";", net.router(rid).name());
        for n in nodes {
            let _ = writeln!(out, "    \"{n}\";");
        }
        out.push_str("  }\n");
    }
    for e in &graph.edges {
        let attrs = match &e.kind {
            EdgeKind::Adjacency => "dir=none".to_string(),
            EdgeKind::Session(scope) => format!("dir=none, style=bold, label=\"{scope:?}\""),
            EdgeKind::Redistribution => "style=dashed".to_string(),
            EdgeKind::Selection => "color=gray".to_string(),
        };
        let label = e
            .policy
            .as_ref()
            .map(|p| format!(", xlabel=\"{p}\""))
            .unwrap_or_default();
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [{attrs}{label}];", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

/// Renders an instance graph (Figure 6/9 style) as DOT.
pub fn instance_graph_dot(instances: &Instances, graph: &InstanceGraph) -> String {
    let mut out = String::from("digraph instance_graph {\n  node [shape=box];\n");
    for n in &graph.nodes {
        let label = node_label(n, instances);
        let shape = match n {
            InstanceNode::Instance(_) => "box",
            _ => "ellipse",
        };
        let _ = writeln!(out, "  \"{n}\" [label=\"{label}\", shape={shape}];");
    }
    for e in &graph.edges {
        let (attrs, label) = match &e.kind {
            ExchangeKind::Redistribution { router, policy } => {
                let mut l = format!("redist via {router}");
                if let Some(p) = policy {
                    let _ = write!(l, " [{p}]");
                }
                ("style=dashed".to_string(), l)
            }
            ExchangeKind::Ebgp { router } => {
                ("dir=none, style=bold".to_string(), format!("EBGP via {router}"))
            }
            ExchangeKind::IgpEdge { router } => {
                ("dir=none".to_string(), format!("IGP edge via {router}"))
            }
        };
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [{attrs}, label=\"{label}\"];", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

/// Renders an instance graph as indented text (for terminals).
pub fn instance_graph_text(instances: &Instances, graph: &InstanceGraph) -> String {
    let mut out = String::new();
    for inst in &instances.list {
        let _ = writeln!(out, "{}: {}", inst.id, inst.label());
        for e in graph.edges_of(InstanceNode::Instance(inst.id)) {
            let arrow = match (&e.kind, e.from) {
                (ExchangeKind::Redistribution { .. }, InstanceNode::Instance(f))
                    if f == inst.id =>
                {
                    format!("--> {}", node_label(&e.to, instances))
                }
                (ExchangeKind::Redistribution { .. }, _) => {
                    format!("<-- {}", node_label(&e.from, instances))
                }
                (_, f) if f == InstanceNode::Instance(inst.id) => {
                    format!("<-> {}", node_label(&e.to, instances))
                }
                (_, _) => format!("<-> {}", node_label(&e.from, instances)),
            };
            let detail = match &e.kind {
                ExchangeKind::Redistribution { router, policy } => match policy {
                    Some(p) => format!("redistribution via {router} [{p}]"),
                    None => format!("redistribution via {router}"),
                },
                ExchangeKind::Ebgp { router } => format!("EBGP via {router}"),
                ExchangeKind::IgpEdge { router } => format!("IGP edge via {router}"),
            };
            let _ = writeln!(out, "  {arrow}  ({detail})");
        }
    }
    out
}

/// Renders a pathway graph (Figure 7/10 style) as indented text, outermost
/// source first — matching the paper's top-to-bottom "External World down
/// to Router RIB" layout.
pub fn pathway_text(pathway: &PathwayGraph, instances: &Instances) -> String {
    let mut out = String::new();
    let max = pathway.max_depth();
    for depth in (0..=max).rev() {
        for n in pathway.nodes.iter().filter(|n| n.depth == depth) {
            let indent = " ".repeat(2 * (max - depth));
            let _ = writeln!(out, "{indent}{}", node_label(&n.node, instances));
        }
    }
    let indent = " ".repeat(2 * (max + 1));
    let _ = writeln!(out, "{indent}Router RIB of {}", pathway.router);
    out
}

fn node_label(node: &InstanceNode, instances: &Instances) -> String {
    match node {
        InstanceNode::Instance(id) => {
            format!("{id} [{}]", instances.get(*id).label())
        }
        InstanceNode::ExternalAs(asn) => format!("external AS{asn}"),
        InstanceNode::ExternalWorld => "External World".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use crate::pathway::PathwayGraph;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap, Network, RouterId};

    fn sample() -> Network {
        Network::from_texts(vec![
            (
                "config1".into(),
                "hostname border\n\
                 interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  redistribute bgp 65001 subnets\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                    .into(),
            ),
            (
                "config2".into(),
                "hostname core\n\
                 interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn renders_all_formats_without_panic() {
        let net = sample();
        let links = LinkMap::build(&net);
        let external = ExternalAnalysis::build(&net, &links);
        let procs = Processes::extract(&net);
        let adj = Adjacencies::build(&net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        let igraph = InstanceGraph::build(&net, &procs, &adj, &inst);
        let pgraph = ProcessGraph::build(&net, &procs, &adj);

        let dot1 = process_graph_dot(&net, &pgraph);
        assert!(dot1.starts_with("digraph"));
        assert!(dot1.contains("cluster_0"));
        assert!(dot1.contains("border"));

        let dot2 = instance_graph_dot(&inst, &igraph);
        assert!(dot2.contains("AS7018"));

        let text = instance_graph_text(&inst, &igraph);
        assert!(text.contains("instance 0"));
        assert!(text.contains("EBGP"));

        let pathway = PathwayGraph::trace(RouterId(1), &inst, &igraph);
        let ptext = pathway_text(&pathway, &inst);
        assert!(ptext.contains("external AS7018"));
        assert!(ptext.contains("Router RIB of r1"));
        // External world prints before (above) the router RIB.
        let ext_pos = ptext.find("external AS7018").unwrap();
        let rib_pos = ptext.find("Router RIB").unwrap();
        assert!(ext_pos < rib_pos);
    }
}
