//! Intra-/inter-domain role classification (paper Section 5.2, Table 1).
//!
//! "Routing protocol instances that have adjacencies with the instances of
//! another network are considered to be serving as an EGP or inter-domain
//! protocol; otherwise they are being used as an IGP or intra-domain
//! protocol." EBGP sessions are classified by whether the peer is inside
//! the corpus (intra-network use of EBGP) or outside (conventional
//! inter-domain use).

use std::collections::BTreeMap;
use std::fmt;

use crate::adjacency::{Adjacencies, SessionScope};
use crate::instance::Instances;
use crate::instance_graph::InstanceGraph;

/// Intra/inter counts for one protocol row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoleCounts {
    /// Used inside the network.
    pub intra: usize,
    /// Used across the network boundary.
    pub inter: usize,
}

impl RoleCounts {
    /// Total uses.
    pub fn total(&self) -> usize {
        self.intra + self.inter
    }

    /// Fraction of uses that are inter-domain (0 when empty).
    pub fn inter_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.inter as f64 / self.total() as f64
        }
    }
}

/// Table 1: per-protocol intra/inter counts. IGP rows count routing
/// *instances*; the EBGP row counts *sessions*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table1 {
    /// Rows keyed by protocol label (`OSPF`, `EIGRP`, `RIP`).
    pub igp_instances: BTreeMap<&'static str, RoleCounts>,
    /// The EBGP session row.
    pub ebgp_sessions: RoleCounts,
    /// IBGP sessions (not a Table 1 row, but needed by the design
    /// classifier and interesting in its own right).
    pub ibgp_sessions: usize,
}

impl Table1 {
    /// Computes the counts for one network.
    pub fn compute(instances: &Instances, graph: &InstanceGraph, adj: &Adjacencies) -> Table1 {
        let mut t = Table1::default();
        for inst in &instances.list {
            if !inst.kind.is_igp() {
                continue;
            }
            let row = t.igp_instances.entry(inst.kind.table1_label()).or_default();
            if graph.is_inter_domain(inst.id) {
                row.inter += 1;
            } else {
                row.intra += 1;
            }
        }
        for s in &adj.bgp {
            match s.scope {
                SessionScope::Ibgp => t.ibgp_sessions += 1,
                SessionScope::EbgpInternal => t.ebgp_sessions.intra += 1,
                SessionScope::EbgpExternal => t.ebgp_sessions.inter += 1,
            }
        }
        t
    }

    /// Accumulates another network's counts (the paper's Table 1 sums all
    /// 31 networks).
    pub fn add(&mut self, other: &Table1) {
        for (label, counts) in &other.igp_instances {
            let row = self.igp_instances.entry(label).or_default();
            row.intra += counts.intra;
            row.inter += counts.inter;
        }
        self.ebgp_sessions.intra += other.ebgp_sessions.intra;
        self.ebgp_sessions.inter += other.ebgp_sessions.inter;
        self.ibgp_sessions += other.ibgp_sessions;
    }

    /// Counts for one IGP row.
    pub fn igp_row(&self, label: &str) -> RoleCounts {
        self.igp_instances.get(label).copied().unwrap_or_default()
    }

    /// Total IGP instances across rows.
    pub fn igp_totals(&self) -> RoleCounts {
        let mut total = RoleCounts::default();
        for c in self.igp_instances.values() {
            total.intra += c.intra;
            total.inter += c.inter;
        }
        total
    }

    /// Fraction of IGP instances serving an inter-domain role (the paper
    /// reports ≈11%).
    pub fn igp_inter_fraction(&self) -> f64 {
        self.igp_totals().inter_fraction()
    }

    /// Fraction of EBGP sessions used intra-network (the paper reports
    /// ≈10%).
    pub fn ebgp_intra_fraction(&self) -> f64 {
        let t = self.ebgp_sessions.total();
        if t == 0 {
            0.0
        } else {
            self.ebgp_sessions.intra as f64 / t as f64
        }
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>10} {:>10}", "", "Intra-", "Inter-")?;
        writeln!(
            f,
            "{:<16} {:>10} {:>10}",
            "EBGP Sessions", self.ebgp_sessions.intra, self.ebgp_sessions.inter
        )?;
        for label in ["OSPF", "EIGRP", "RIP"] {
            let row = self.igp_row(label);
            writeln!(f, "{:<16} {:>10} {:>10}", label, row.intra, row.inter)?;
        }
        let t = self.igp_totals();
        writeln!(f, "{:<16} {:>10} {:>10}", "IGP total", t.intra, t.inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use crate::instance_graph::InstanceGraph;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    fn compute(net: &Network) -> Table1 {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        let graph = InstanceGraph::build(net, &procs, &adj, &inst);
        Table1::compute(&inst, &graph, &adj)
    }

    #[test]
    fn igp_as_edge_protocol_counts_as_inter() {
        // RIP covering an external-facing /30: an IGP in an EGP role.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let t = compute(&net);
        assert_eq!(t.igp_row("RIP"), RoleCounts { intra: 0, inter: 1 });
        assert_eq!(t.igp_inter_fraction(), 1.0);
    }

    #[test]
    fn interior_ospf_counts_as_intra() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let t = compute(&net);
        assert_eq!(t.igp_row("OSPF"), RoleCounts { intra: 1, inter: 0 });
        assert_eq!(t.igp_inter_fraction(), 0.0);
    }

    #[test]
    fn ebgp_rows_split_by_peer_location() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Serial1\n ip address 192.0.2.1 255.255.255.252\n\
                 router bgp 65001\n \
                  neighbor 10.0.0.2 remote-as 65002\n \
                  neighbor 192.0.2.2 remote-as 7018\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"
                    .into(),
            ),
        ])
        .unwrap();
        let t = compute(&net);
        assert_eq!(t.ebgp_sessions, RoleCounts { intra: 1, inter: 1 });
        assert_eq!(t.ebgp_intra_fraction(), 0.5);
        assert_eq!(t.ibgp_sessions, 0);
    }

    #[test]
    fn accumulation_across_networks() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
             router rip\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let t1 = compute(&net);
        let mut total = Table1::default();
        total.add(&t1);
        total.add(&t1);
        assert_eq!(total.igp_row("RIP").inter, 2);
    }

    #[test]
    fn igrp_folds_into_eigrp_row() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             router igrp 5\n network 10.0.0.0\n"
                .into(),
        )])
        .unwrap();
        let t = compute(&net);
        assert_eq!(t.igp_row("EIGRP").total(), 1);
    }

    #[test]
    fn display_renders_all_rows() {
        let t = Table1::default();
        let text = t.to_string();
        for label in ["EBGP Sessions", "OSPF", "EIGRP", "RIP", "IGP total"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
