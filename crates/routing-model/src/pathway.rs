//! Route pathway graphs (paper Section 3.3, Figures 7 and 10).
//!
//! For a chosen router, a breadth-first search backward through the
//! instance graph records every instance (and external source) whose
//! routes can reach that router's RIB, and at what depth. The result
//! locates all the routing policies that affect the routes the router
//! sees, and makes structural differences between designs visible: a
//! textbook enterprise router is fed by one IGP instance fed by one BGP
//! instance; net5's router 3 sits behind three layers of protocols and
//! redistributions.

use std::collections::{BTreeMap, VecDeque};

use nettopo::RouterId;

use crate::instance::{InstanceId, Instances};
use crate::instance_graph::{ExchangeKind, InstanceGraph, InstanceNode};

/// One node of a pathway graph, with its BFS depth from the router RIB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathwayNode {
    /// The instance-graph node.
    pub node: InstanceNode,
    /// Hops from the router RIB (0 = instances the router belongs to).
    pub depth: usize,
}

/// The route pathway graph for one router.
#[derive(Clone, Debug)]
pub struct PathwayGraph {
    /// The router whose routes are being traced.
    pub router: RouterId,
    /// Reached nodes with depths, in BFS order.
    pub nodes: Vec<PathwayNode>,
    /// The pathway edges: `(source, dest, policy)` meaning routes flow
    /// from `source` toward the router via `dest`.
    pub edges: Vec<(InstanceNode, InstanceNode, Option<String>)>,
}

/// A reverse-flow adjacency index over one instance graph, shared
/// across many traces.
///
/// [`PathwayGraph::trace`] needs, for each reached node, the set of
/// nodes whose routes flow *into* it. Scanning the whole edge list per
/// dequeued node makes a single trace O(V·E); an endpoint that traces
/// every router of a large network (the corpus-wide `/pathways` view)
/// turns that into minutes of wall-clock. Building this index once
/// makes each trace O(V + E), and [`PathwayIndex::seed`] exposes the
/// depth-0 instance set so callers can deduplicate whole traces:
/// routers with the same seed have structurally identical pathways.
pub struct PathwayIndex {
    /// node → `(source, policy)` pairs whose routes flow into it.
    backward: BTreeMap<InstanceNode, Vec<(InstanceNode, Option<String>)>>,
    /// router → instances it participates in (the trace seed), in
    /// `instances.list` order.
    membership: BTreeMap<RouterId, Vec<InstanceId>>,
}

impl PathwayIndex {
    /// Indexes `graph` for repeated tracing.
    pub fn new(instances: &Instances, graph: &InstanceGraph) -> PathwayIndex {
        let mut backward: BTreeMap<InstanceNode, Vec<(InstanceNode, Option<String>)>> =
            BTreeMap::new();
        for e in &graph.edges {
            match &e.kind {
                // Redistribution is directed: routes flow from → to.
                ExchangeKind::Redistribution { policy, .. } => {
                    backward.entry(e.to).or_default().push((e.from, policy.clone()));
                }
                // Exchange edges (EBGP, IGP edges) flow both ways.
                ExchangeKind::Ebgp { .. } | ExchangeKind::IgpEdge { .. } => {
                    backward.entry(e.to).or_default().push((e.from, None));
                    backward.entry(e.from).or_default().push((e.to, None));
                }
            }
        }
        let mut membership: BTreeMap<RouterId, Vec<InstanceId>> = BTreeMap::new();
        for inst in &instances.list {
            for router in &inst.routers {
                membership.entry(*router).or_default().push(inst.id);
            }
        }
        PathwayIndex { backward, membership }
    }

    /// The depth-0 instance set of `router` — its trace seed. Two
    /// routers with equal seeds produce pathways that differ only in
    /// the `router` field.
    pub fn seed(&self, router: RouterId) -> &[InstanceId] {
        self.membership.get(&router).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Traces where `router`'s routes come from.
    pub fn trace(&self, router: RouterId) -> PathwayGraph {
        let mut depths: BTreeMap<InstanceNode, usize> = BTreeMap::new();
        let mut edges = Vec::new();
        let mut queue: VecDeque<InstanceNode> = VecDeque::new();

        // Depth 0: instances this router participates in feed its RIB.
        for id in self.seed(router) {
            let node = InstanceNode::Instance(*id);
            depths.insert(node, 0);
            queue.push_back(node);
        }

        // Walk edges *backwards* along route flow via the prebuilt
        // index. A self-loop contributes its entry twice (once per
        // endpoint); the sort + dedup below collapses it, matching the
        // single match-arm hit of the unindexed scan.
        while let Some(current) = queue.pop_front() {
            let depth = depths[&current];
            let Some(incoming) = self.backward.get(&current) else {
                continue;
            };
            for (source, policy) in incoming {
                edges.push((*source, current, policy.clone()));
                if !depths.contains_key(source) {
                    depths.insert(*source, depth + 1);
                    queue.push_back(*source);
                }
            }
        }

        let mut nodes: Vec<PathwayNode> = depths
            .into_iter()
            .map(|(node, depth)| PathwayNode { node, depth })
            .collect();
        nodes.sort_by_key(|n| (n.depth, n.node));
        edges.sort_by_key(|(a, b, _)| (*a, *b));
        edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1 && a.2 == b.2);

        PathwayGraph { router, nodes, edges }
    }
}

impl PathwayGraph {
    /// Traces where `router`'s routes come from. One-shot form of
    /// [`PathwayIndex::trace`]; callers tracing many routers of the
    /// same network should build the index once instead.
    pub fn trace(
        router: RouterId,
        instances: &Instances,
        graph: &InstanceGraph,
    ) -> PathwayGraph {
        PathwayIndex::new(instances, graph).trace(router)
    }

    /// The maximum depth (number of protocol layers routes must traverse
    /// to reach this router) — net5's router 3 shows "at least 3 layers".
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// True if routes from the external world can reach this router.
    pub fn reaches_external_world(&self) -> bool {
        self.nodes.iter().any(|n| {
            matches!(n.node, InstanceNode::ExternalAs(_) | InstanceNode::ExternalWorld)
        })
    }

    /// Instances on the pathway (excluding external nodes).
    pub fn instances(&self) -> Vec<InstanceId> {
        self.nodes
            .iter()
            .filter_map(|n| match n.node {
                InstanceNode::Instance(id) => Some(id),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacencies;
    use crate::instance_graph::InstanceGraph;
    use crate::process::Processes;
    use nettopo::{ExternalAnalysis, LinkMap, Network};

    fn build(net: &Network) -> (Instances, InstanceGraph) {
        let links = LinkMap::build(net);
        let external = ExternalAnalysis::build(net, &links);
        let procs = Processes::extract(net);
        let adj = Adjacencies::build(net, &links, &procs, &external);
        let inst = Instances::compute(&procs, &adj);
        let graph = InstanceGraph::build(net, &procs, &adj, &inst);
        (inst, graph)
    }

    /// Figure 7(a): interior enterprise router learns everything from the
    /// IGP, which learns from BGP, which learns from the world.
    #[test]
    fn enterprise_interior_pathway_is_layered() {
        let net = Network::from_texts(vec![
            (
                "config1".into(), // border
                "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
                 interface Serial1\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n \
                  redistribute bgp 65001 subnets\n\
                 router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                    .into(),
            ),
            (
                "config2".into(), // interior: router 1 of Fig. 7(a)
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (inst, graph) = build(&net);
        let pathway = PathwayGraph::trace(RouterId(1), &inst, &graph);
        // OSPF at depth 0, BGP at depth 1, external AS at depth 2.
        assert_eq!(pathway.max_depth(), 2);
        assert!(pathway.reaches_external_world());
        assert_eq!(pathway.instances().len(), 2);
        let depth0: Vec<&PathwayNode> =
            pathway.nodes.iter().filter(|n| n.depth == 0).collect();
        assert_eq!(depth0.len(), 1);
    }

    /// A router cut off from external routes never reaches the world node.
    #[test]
    fn isolated_igp_island() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (inst, graph) = build(&net);
        let pathway = PathwayGraph::trace(RouterId(0), &inst, &graph);
        assert_eq!(pathway.max_depth(), 0);
        assert!(!pathway.reaches_external_world());
    }

    /// Redistribution direction matters: routes flow along redistribution
    /// arrows, so an instance that only *receives* our routes does not
    /// appear in our pathway.
    #[test]
    fn one_way_redistribution_respected() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                // OSPF→RIP redistribution only: RIP hears OSPF routes but
                // OSPF hears nothing from RIP.
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Ethernet0\n ip address 10.2.0.1 255.255.255.0\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n\
                 router rip\n network 10.2.0.0\n redistribute ospf 1\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
                    .into(),
            ),
        ])
        .unwrap();
        let (inst, graph) = build(&net);
        // Router 1 runs only OSPF: its pathway must not include RIP.
        let pathway = PathwayGraph::trace(RouterId(1), &inst, &graph);
        let kinds: Vec<_> = pathway
            .instances()
            .iter()
            .map(|id| inst.get(*id).kind)
            .collect();
        assert!(!kinds.contains(&crate::ProtoKind::Rip));
    }
}
